//! Trace replay: drives an [`Ssd`] with a stream of host operations and
//! summarises the outcome.
//!
//! Three replay modes exist:
//!
//! * [`replay`] — the legacy closed-loop mode: one request in flight,
//!   each completes before the next is issued (queue depth 1).
//! * [`replay_queued`] — closed-loop at a configurable queue depth:
//!   the host keeps `queue_depth` requests outstanding through a
//!   single-queue [`crate::Device`], so requests overlap across flash
//!   dies.
//! * [`replay_open_loop`] — open-loop: [`TimedOp`]s carry arrival
//!   timestamps and stream ids (multi-tenant traces); each stream
//!   targets its own named submission queue, requests are admitted at
//!   their trace time regardless of completions, and the device's
//!   arbiter decides whose turn it is — how real multi-queue devices
//!   experience bursty, overlapping tenants.
//!
//! The `_with` variants ([`replay_queued_with`],
//! [`replay_open_loop_with`]) take a full [`DeviceConfig`], which is
//! how experiments select arbitration policies and background GC.

use crate::device::{Device, DeviceConfig};
use crate::error::SimError;
use crate::mapping::MappingScheme;
use crate::qos::QosTick;
use crate::request::{IoKind, IoRequest};
use crate::ssd::Ssd;
use crate::stats::{LatencyHistogram, SimStats};
use crate::trace::UtilizationReport;
use leaftl_flash::Lpa;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One host request, page-granular.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostOp {
    /// Read `pages` pages starting at `lpa`.
    Read {
        /// First logical page.
        lpa: Lpa,
        /// Number of pages.
        pages: u32,
    },
    /// Write `pages` pages starting at `lpa`.
    Write {
        /// First logical page.
        lpa: Lpa,
        /// Number of pages.
        pages: u32,
    },
}

impl HostOp {
    /// Convenience single-page read.
    pub fn read(lpa: u64) -> Self {
        HostOp::Read {
            lpa: Lpa::new(lpa),
            pages: 1,
        }
    }

    /// Convenience single-page write.
    pub fn write(lpa: u64) -> Self {
        HostOp::Write {
            lpa: Lpa::new(lpa),
            pages: 1,
        }
    }

    /// Number of pages the op touches.
    pub fn page_count(&self) -> u32 {
        match *self {
            HostOp::Read { pages, .. } | HostOp::Write { pages, .. } => pages,
        }
    }

    /// Whether the op is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, HostOp::Read { .. })
    }
}

/// Summary of one replay run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Host ops executed.
    pub ops: u64,
    /// Pages read.
    pub pages_read: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Virtual time consumed by the replay, in nanoseconds.
    pub elapsed_ns: u64,
    /// Statistics snapshot at the end of the replay.
    pub stats: SimStats,
}

impl ReplayReport {
    /// Mean host read latency in microseconds.
    pub fn mean_read_latency_us(&self) -> f64 {
        self.stats.read_latency.mean_ns() / 1000.0
    }

    /// Mean host write latency in microseconds.
    pub fn mean_write_latency_us(&self) -> f64 {
        self.stats.write_latency.mean_ns() / 1000.0
    }

    /// Mean latency over all host page operations, the paper's
    /// normalised-performance metric (lower is better).
    pub fn mean_latency_us(&self) -> f64 {
        let reads = self.stats.read_latency.count() as f64;
        let writes = self.stats.write_latency.count() as f64;
        if reads + writes == 0.0 {
            return 0.0;
        }
        (self.stats.read_latency.mean_ns() * reads + self.stats.write_latency.mean_ns() * writes)
            / (reads + writes)
            / 1000.0
    }
}

/// Replays `ops` against `ssd` closed-loop. Write contents are derived
/// deterministically from a sequence counter so integrity can be
/// checked externally. Out-of-range addresses are clamped into the
/// logical space (trace generators target the logical capacity, but
/// scaled-down replays stay safe).
///
/// # Errors
///
/// Propagates any [`SimError`] other than address range issues (which
/// are avoided by clamping).
pub fn replay<S, I>(ssd: &mut Ssd<S>, ops: I) -> Result<ReplayReport, SimError>
where
    S: MappingScheme + Clone,
    I: IntoIterator<Item = HostOp>,
{
    let logical = ssd.config().logical_pages();
    let start_ns = ssd.now_ns();
    let mut report_ops = 0u64;
    let mut pages_read = 0u64;
    let mut pages_written = 0u64;
    let mut write_seq = 0x5eed_0000_0000_0000u64;

    for op in ops {
        report_ops += 1;
        match op {
            HostOp::Read { lpa, pages } => {
                for i in 0..pages as u64 {
                    let addr = Lpa::new((lpa.raw() + i) % logical);
                    ssd.read(addr)?;
                    pages_read += 1;
                }
            }
            HostOp::Write { lpa, pages } => {
                for i in 0..pages as u64 {
                    let addr = Lpa::new((lpa.raw() + i) % logical);
                    write_seq = write_seq.wrapping_add(1);
                    ssd.write(addr, write_seq)?;
                    pages_written += 1;
                }
            }
        }
    }

    Ok(ReplayReport {
        ops: report_ops,
        pages_read,
        pages_written,
        elapsed_ns: ssd.now_ns() - start_ns,
        stats: ssd.stats().clone(),
    })
}

/// One timestamped host request of an open-loop, multi-stream trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedOp {
    /// Arrival time in virtual nanoseconds from trace start.
    pub at_ns: u64,
    /// Issuing stream/tenant.
    pub stream: u32,
    /// The operation.
    pub op: HostOp,
}

/// Per-stream (= per-submission-queue) latency attribution of a
/// queued replay, including how much of the stream's traffic contended
/// with in-flight background GC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamLatency {
    /// Stream/tenant id (the submission queue it targeted).
    pub stream: u32,
    /// Submit→complete latency distribution of this stream's page
    /// requests.
    pub latency: LatencyHistogram,
    /// Latency distribution of just the requests dispatched while a
    /// background GC migration was still in flight — the per-queue
    /// GC-interference attribution (empty under synchronous GC).
    pub gc_overlap_latency: LatencyHistogram,
    /// Virtual nanoseconds this stream's queue head spent deferred by
    /// QoS admission throttling (0 without a QoS controller).
    pub admission_wait_ns: u64,
}

impl StreamLatency {
    /// Requests of this stream that contended with background GC.
    pub fn gc_overlap_requests(&self) -> u64 {
        self.gc_overlap_latency.count()
    }

    /// Fraction of the stream's requests that contended with
    /// background GC.
    pub fn gc_overlap_fraction(&self) -> f64 {
        if self.latency.count() == 0 {
            return 0.0;
        }
        self.gc_overlap_latency.count() as f64 / self.latency.count() as f64
    }
}

/// Summary of one queued (closed- or open-loop) replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueuedReplayReport {
    /// Host ops executed.
    pub ops: u64,
    /// Pages read.
    pub pages_read: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Queue depth the engine ran at.
    pub queue_depth: usize,
    /// Virtual time from first submission to last completion.
    pub elapsed_ns: u64,
    /// Per-page-request latency distribution. Open-loop replays record
    /// arrival→complete (queueing delay included — what a tenant
    /// observes); closed-loop replays record dispatch→complete service
    /// time (arrivals are synthetic there).
    pub request_latency: LatencyHistogram,
    /// Arrival→dispatch queueing-delay distribution of page requests —
    /// head-of-line time spent in the submission queue before the
    /// device picked the request up. The pipelined translation stage
    /// shortens per-request *service* time, which in turn drains this
    /// wait under load; experiments report the two side by side.
    pub wait_latency: LatencyHistogram,
    /// Latency broken down per stream (one entry per distinct stream).
    pub per_stream: Vec<StreamLatency>,
    /// Background GC migrations the device dispatched during the
    /// replay (0 under synchronous GC).
    pub gc_dispatched: u64,
    /// Background translation-shard compactions the device dispatched
    /// during the replay (0 under inline compaction).
    pub compact_dispatched: u64,
    /// Virtual time host writes spent blocked at the hard floor
    /// waiting for forced migrations (0 under synchronous GC).
    pub gc_stall_ns: u64,
    /// Total virtual time queue heads spent deferred by QoS admission
    /// throttling, across all queues (0 without a QoS controller).
    pub admission_wait_ns: u64,
    /// The QoS controller's control-tick log (empty without a
    /// controller) — per-tick weights, p99-vs-budget errors and
    /// interference attribution.
    pub qos_ticks: Vec<QosTick>,
    /// Statistics snapshot at the end of the replay.
    pub stats: SimStats,
    /// Per-die busy-time attribution (host/GC/compaction/maplog) over
    /// the replay — the device-timeline accounting behind the Perfetto
    /// exporter, always on.
    pub utilization: UtilizationReport,
}

impl QueuedReplayReport {
    /// Page requests completed per second of virtual time.
    pub fn iops(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        (self.pages_read + self.pages_written) as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Mean submit→complete latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.request_latency.mean_ns() / 1000.0
    }

    /// Median submit→complete latency in microseconds.
    pub fn p50_latency_us(&self) -> f64 {
        self.request_latency.percentile_ns(50.0) as f64 / 1000.0
    }

    /// 99th-percentile submit→complete latency in microseconds.
    pub fn p99_latency_us(&self) -> f64 {
        self.request_latency.percentile_ns(99.0) as f64 / 1000.0
    }

    /// 99.9th-percentile submit→complete latency in microseconds.
    pub fn p999_latency_us(&self) -> f64 {
        self.request_latency.percentile_ns(99.9) as f64 / 1000.0
    }

    /// Mean arrival→dispatch queueing delay in microseconds.
    pub fn mean_wait_us(&self) -> f64 {
        self.wait_latency.mean_ns() / 1000.0
    }

    /// 99th-percentile arrival→dispatch queueing delay in microseconds.
    pub fn p99_wait_us(&self) -> f64 {
        self.wait_latency.percentile_ns(99.0) as f64 / 1000.0
    }
}

/// Expands a [`HostOp`] into page-granular engine requests, clamping
/// addresses like [`replay`] and deriving write contents from the same
/// deterministic sequence counter.
fn expand_op(
    op: HostOp,
    at_ns: u64,
    stream: u32,
    logical: u64,
    write_seq: &mut u64,
    requests: &mut Vec<IoRequest>,
) {
    match op {
        HostOp::Read { lpa, pages } => {
            for i in 0..pages as u64 {
                let addr = Lpa::new((lpa.raw() + i) % logical);
                requests.push(IoRequest::read(addr).at(at_ns).on_stream(stream));
            }
        }
        HostOp::Write { lpa, pages } => {
            for i in 0..pages as u64 {
                let addr = Lpa::new((lpa.raw() + i) % logical);
                *write_seq = write_seq.wrapping_add(1);
                requests.push(
                    IoRequest::write(addr, *write_seq)
                        .at(at_ns)
                        .on_stream(stream),
                );
            }
        }
    }
}

fn run_device<S>(
    ssd: &mut Ssd<S>,
    requests: Vec<IoRequest>,
    ops: u64,
    config: DeviceConfig,
    open_loop: bool,
    queue_of: impl Fn(u32) -> usize,
) -> Result<QueuedReplayReport, SimError>
where
    S: MappingScheme + Clone,
{
    let start_ns = ssd.now_ns();
    let queue_depth = config.queue_depth;
    let mut pages_read = 0u64;
    let mut pages_written = 0u64;
    let mut request_latency = LatencyHistogram::new();
    let mut wait_latency = LatencyHistogram::new();
    let mut per_stream: BTreeMap<u32, (LatencyHistogram, LatencyHistogram)> = BTreeMap::new();
    let mut last_complete = start_ns;

    let mut stream_queue: BTreeMap<u32, usize> = BTreeMap::new();
    let (completions, gc_dispatched, gc_stall_ns, compact_dispatched, admission_waits, qos_ticks) = {
        let mut device = Device::new(ssd, config);
        for request in requests {
            let queue = queue_of(request.stream);
            if open_loop {
                // Open loop: the whole timestamped trace is visible to
                // the scheduler before the clock moves — a closed-loop
                // submit here would let one slow-waking head advance
                // the clock past arrivals the device was never shown.
                device.enqueue_to(queue, request)?;
            } else {
                device.submit_to(queue, request)?;
            }
        }
        // Every replay runs the backlog to completion — a device must
        // never be dropped with host commands still pending.
        let completions = device.drain()?;
        (
            completions,
            device.gc_dispatched(),
            device.gc_stall_ns(),
            device.compact_dispatched(),
            device.admission_wait_per_queue().to_vec(),
            device.qos_ticks().to_vec(),
        )
    };
    for completion in completions {
        match completion.kind() {
            IoKind::Read => pages_read += 1,
            IoKind::Write => pages_written += 1,
            IoKind::Flush | IoKind::GcMigrate | IoKind::Compact | IoKind::MapLog => continue,
        }
        // Open-loop requests have real arrival times, so their latency
        // includes queueing delay; closed-loop requests are "issued"
        // at dispatch, so only the service time is meaningful.
        let latency = if open_loop {
            completion.latency_ns()
        } else {
            completion.service_ns()
        };
        stream_queue
            .entry(completion.stream)
            .or_insert(completion.queue as usize);
        let (all, overlapped) = per_stream.entry(completion.stream).or_default();
        request_latency.record(latency);
        wait_latency.record(completion.wait_ns());
        all.record(latency);
        if completion.gc_overlap {
            overlapped.record(latency);
        }
        last_complete = last_complete.max(completion.complete_ns);
    }

    Ok(QueuedReplayReport {
        ops,
        pages_read,
        pages_written,
        queue_depth,
        elapsed_ns: last_complete - start_ns,
        request_latency,
        wait_latency,
        per_stream: per_stream
            .into_iter()
            .map(|(stream, (latency, gc_overlap_latency))| StreamLatency {
                stream,
                latency,
                gc_overlap_latency,
                // With the dense one-queue-per-stream mapping this is
                // exact; if a caller shares a queue across streams the
                // queue's wait is attributed to each sharer.
                admission_wait_ns: stream_queue
                    .get(&stream)
                    .and_then(|&q| admission_waits.get(q))
                    .copied()
                    .unwrap_or(0),
            })
            .collect(),
        gc_dispatched,
        gc_stall_ns,
        compact_dispatched,
        admission_wait_ns: admission_waits.iter().sum(),
        qos_ticks,
        stats: ssd.stats().clone(),
        utilization: ssd.utilization().clone(),
    })
}

/// Replays `ops` closed-loop at `queue_depth`: the host keeps up to
/// that many page requests outstanding, refilling as completions
/// retire. Depth 1 reproduces [`replay`]'s blocking behaviour (and its
/// device state is identical at *any* depth — only timing changes).
///
/// # Errors
///
/// Propagates any [`SimError`] other than address range issues (which
/// are avoided by clamping).
pub fn replay_queued<S, I>(
    ssd: &mut Ssd<S>,
    ops: I,
    queue_depth: usize,
) -> Result<QueuedReplayReport, SimError>
where
    S: MappingScheme + Clone,
    I: IntoIterator<Item = HostOp>,
{
    replay_queued_with(ssd, ops, DeviceConfig::single(queue_depth))
}

/// [`replay_queued`] with a full [`DeviceConfig`] — queue count,
/// arbitration policy and GC mode. Closed-loop ops carry no stream
/// ids, so they all target queue 0; the config matters for its depth,
/// GC mode and (with background GC) arbitration against the internal
/// GC queue.
///
/// # Errors
///
/// Propagates any [`SimError`] other than address range issues (which
/// are avoided by clamping).
pub fn replay_queued_with<S, I>(
    ssd: &mut Ssd<S>,
    ops: I,
    config: DeviceConfig,
) -> Result<QueuedReplayReport, SimError>
where
    S: MappingScheme + Clone,
    I: IntoIterator<Item = HostOp>,
{
    let logical = ssd.config().logical_pages();
    let mut write_seq = 0x5eed_0000_0000_0000u64;
    let mut requests = Vec::new();
    let mut op_count = 0u64;
    for op in ops {
        op_count += 1;
        expand_op(op, 0, 0, logical, &mut write_seq, &mut requests);
    }
    let queues = config.queues;
    run_device(ssd, requests, op_count, config, false, move |stream| {
        stream as usize % queues
    })
}

/// Replays a timestamped multi-stream trace open-loop: every distinct
/// stream targets its own named submission queue (round-robin
/// arbitration between them), each request is admitted at its trace
/// arrival time (relative to the device clock at call time) regardless
/// of how many are already outstanding, and at most `queue_depth`
/// commands are dispatched concurrently — a saturated device pushes
/// queueing delay into the per-request latency rather than stalling
/// the trace. Ops should be sorted by `at_ns` within each stream (each
/// queue is FIFO; the device clamps an out-of-order timestamp up to
/// that queue's newest arrival).
///
/// # Errors
///
/// Propagates any [`SimError`] other than address range issues (which
/// are avoided by clamping).
pub fn replay_open_loop<S, I>(
    ssd: &mut Ssd<S>,
    ops: I,
    queue_depth: usize,
) -> Result<QueuedReplayReport, SimError>
where
    S: MappingScheme + Clone,
    I: IntoIterator<Item = TimedOp>,
{
    let ops: Vec<TimedOp> = ops.into_iter().collect();
    // Dense stream→queue remap: tenant ids are arbitrary u32s, so one
    // queue per *distinct* stream (not per id value) keeps sparse or
    // large ids from allocating queues the trace never uses.
    let queue_map: BTreeMap<u32, usize> = ops
        .iter()
        .map(|t| t.stream)
        .collect::<std::collections::BTreeSet<u32>>()
        .into_iter()
        .enumerate()
        .map(|(queue, stream)| (stream, queue))
        .collect();
    let config = DeviceConfig::new(queue_map.len().max(1), queue_depth);
    open_loop_inner(ssd, ops, config, move |stream| {
        queue_map.get(&stream).copied().unwrap_or(0)
    })
}

/// [`replay_open_loop`] with a full [`DeviceConfig`] — this is how the
/// arbitration and QoS experiments select weighted or host-priority
/// policies, background GC and a QoS controller. Every distinct stream
/// gets its own submission queue (dense remap in ascending stream-id
/// order, like [`replay_open_loop`]): queue assignment is explicit per
/// tenant, so per-queue attribution (SLOs, `admission_wait_ns`,
/// arbiter weights) is never silently shared.
///
/// # Errors
///
/// * [`SimError::StreamsExceedQueues`] — the trace names more distinct
///   streams than `config.queues`; the old `stream % queues` fallback
///   aliased tenants onto shared queues and corrupted per-tenant
///   attribution, so the replay now refuses instead.
/// * Otherwise propagates any [`SimError`] except address range issues
///   (avoided by clamping).
pub fn replay_open_loop_with<S, I>(
    ssd: &mut Ssd<S>,
    ops: I,
    config: DeviceConfig,
) -> Result<QueuedReplayReport, SimError>
where
    S: MappingScheme + Clone,
    I: IntoIterator<Item = TimedOp>,
{
    let ops: Vec<TimedOp> = ops.into_iter().collect();
    let queue_map: BTreeMap<u32, usize> = ops
        .iter()
        .map(|t| t.stream)
        .collect::<std::collections::BTreeSet<u32>>()
        .into_iter()
        .enumerate()
        .map(|(queue, stream)| (stream, queue))
        .collect();
    if queue_map.len() > config.queues {
        return Err(SimError::StreamsExceedQueues {
            streams: queue_map.len(),
            queues: config.queues,
        });
    }
    open_loop_inner(ssd, ops, config, move |stream| {
        queue_map.get(&stream).copied().unwrap_or(0)
    })
}

fn open_loop_inner<S, I>(
    ssd: &mut Ssd<S>,
    ops: I,
    config: DeviceConfig,
    queue_of: impl Fn(u32) -> usize,
) -> Result<QueuedReplayReport, SimError>
where
    S: MappingScheme + Clone,
    I: IntoIterator<Item = TimedOp>,
{
    let logical = ssd.config().logical_pages();
    let base_ns = ssd.now_ns();
    let mut write_seq = 0x5eed_0000_0000_0000u64;
    let mut requests = Vec::new();
    let mut op_count = 0u64;
    for timed in ops {
        op_count += 1;
        expand_op(
            timed.op,
            base_ns + timed.at_ns,
            timed.stream,
            logical,
            &mut write_seq,
            &mut requests,
        );
    }
    run_device(ssd, requests, op_count, config, true, queue_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use crate::mapping::ExactPageMap;

    #[test]
    fn replay_mixed_ops() {
        let mut ssd = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
        let ops = vec![
            HostOp::Write {
                lpa: Lpa::new(0),
                pages: 64,
            },
            HostOp::Read {
                lpa: Lpa::new(0),
                pages: 64,
            },
            HostOp::read(3),
        ];
        let report = replay(&mut ssd, ops).unwrap();
        assert_eq!(report.ops, 3);
        assert_eq!(report.pages_written, 64);
        assert_eq!(report.pages_read, 65);
        assert!(report.elapsed_ns > 0);
        assert!(report.mean_latency_us() > 0.0);
    }

    #[test]
    fn replay_clamps_out_of_range() {
        let mut ssd = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
        let logical = ssd.config().logical_pages();
        let ops = vec![HostOp::write(logical + 5), HostOp::read(logical + 5)];
        let report = replay(&mut ssd, ops).unwrap();
        assert_eq!(report.pages_written, 1);
    }

    #[test]
    fn replay_queued_depth1_matches_blocking_state() {
        let ops = vec![
            HostOp::Write {
                lpa: Lpa::new(0),
                pages: 96,
            },
            HostOp::Read {
                lpa: Lpa::new(0),
                pages: 96,
            },
        ];
        let mut blocking = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
        let legacy = replay(&mut blocking, ops.clone()).unwrap();
        let mut queued = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
        let report = replay_queued(&mut queued, ops, 1).unwrap();
        assert_eq!(report.ops, 2);
        assert_eq!(report.pages_read, 96);
        assert_eq!(report.pages_written, 96);
        assert_eq!(report.elapsed_ns, legacy.elapsed_ns);
        assert_eq!(report.stats.flash, legacy.stats.flash);
        assert!(report.iops() > 0.0);
    }

    #[test]
    fn replay_queued_deeper_is_faster() {
        let mut config = SsdConfig::small_test();
        config.dram_bytes = 64 * 1024; // tiny cache: reads hit flash
        let ops: Vec<HostOp> = std::iter::once(HostOp::Write {
            lpa: Lpa::new(0),
            pages: 512,
        })
        .chain((0..256u64).map(|i| HostOp::read(i * 2)))
        .collect();
        let mut qd1 = Ssd::new(config.clone(), ExactPageMap::new());
        let r1 = replay_queued(&mut qd1, ops.clone(), 1).unwrap();
        let mut qd16 = Ssd::new(config, ExactPageMap::new());
        let r16 = replay_queued(&mut qd16, ops, 16).unwrap();
        assert!(
            r16.elapsed_ns < r1.elapsed_ns,
            "QD=16 ({}) must beat QD=1 ({})",
            r16.elapsed_ns,
            r1.elapsed_ns
        );
        assert!(r16.iops() > r1.iops());
        assert_eq!(r16.stats.flash, r1.stats.flash, "same work either way");
    }

    #[test]
    fn open_loop_attributes_streams_and_queueing() {
        let mut ssd = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
        // Two tenants: stream 0 writes early, stream 1 reads later.
        let mut trace: Vec<TimedOp> = (0..64u64)
            .map(|i| TimedOp {
                at_ns: i * 100,
                stream: 0,
                op: HostOp::write(i),
            })
            .collect();
        trace.extend((0..32u64).map(|i| TimedOp {
            at_ns: 200_000 + i * 100,
            stream: 1,
            op: HostOp::read(i),
        }));
        trace.sort_by_key(|t| t.at_ns);
        let report = replay_open_loop(&mut ssd, trace, 8).unwrap();
        assert_eq!(report.pages_written, 64);
        assert_eq!(report.pages_read, 32);
        assert_eq!(report.per_stream.len(), 2);
        assert_eq!(report.per_stream[0].stream, 0);
        assert_eq!(report.per_stream[0].latency.count(), 64);
        assert_eq!(report.per_stream[1].latency.count(), 32);
        // The trace spans at least to the last arrival.
        assert!(report.elapsed_ns >= 200_000 + 31 * 100);
    }

    #[test]
    fn open_loop_with_refuses_stream_queue_collisions() {
        let mut ssd = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
        // Three distinct streams, two queues: the old `stream % queues`
        // map would silently fold stream 2 onto stream 0's queue.
        let trace: Vec<TimedOp> = (0..3u32)
            .map(|s| TimedOp {
                at_ns: s as u64 * 100,
                stream: s,
                op: HostOp::write(s as u64),
            })
            .collect();
        assert_eq!(
            replay_open_loop_with(&mut ssd, trace.clone(), DeviceConfig::new(2, 4)).unwrap_err(),
            SimError::StreamsExceedQueues {
                streams: 3,
                queues: 2
            }
        );
        // Enough queues: the dense remap gives each stream its own.
        let report = replay_open_loop_with(&mut ssd, trace, DeviceConfig::new(3, 4)).unwrap();
        assert_eq!(report.per_stream.len(), 3);
        assert_eq!(report.admission_wait_ns, 0, "no QoS controller attached");
        assert!(report.qos_ticks.is_empty());
    }

    #[test]
    fn open_loop_with_remaps_sparse_streams_densely() {
        let mut ssd = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
        // Sparse ids 7 and 300 fit two queues — id values don't matter,
        // distinct-stream count does.
        let trace = vec![
            TimedOp {
                at_ns: 0,
                stream: 300,
                op: HostOp::write(0),
            },
            TimedOp {
                at_ns: 50,
                stream: 7,
                op: HostOp::write(1),
            },
        ];
        let report = replay_open_loop_with(&mut ssd, trace, DeviceConfig::new(2, 4)).unwrap();
        assert_eq!(report.per_stream.len(), 2);
        assert_eq!(report.per_stream[0].stream, 7);
        assert_eq!(report.per_stream[1].stream, 300);
    }

    #[test]
    fn host_op_helpers() {
        assert!(HostOp::read(1).is_read());
        assert!(!HostOp::write(1).is_read());
        assert_eq!(
            HostOp::Write {
                lpa: Lpa::new(0),
                pages: 7
            }
            .page_count(),
            7
        );
    }
}
