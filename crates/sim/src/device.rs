//! The NVMe-style multi-queue device front-end.
//!
//! [`Device`] replaces the single-FIFO engine of earlier revisions: it
//! owns N host submission queues (one per tenant/stream) plus an
//! internal queue of background GC migrations, and an [`Arbiter`]
//! decides, command by command, which queue the controller serves
//! next. Every operation — host reads and writes, buffer flushes, GC
//! page migrations — is a [`Command`] flowing through the same per-die
//! scheduler, so background work competes with host traffic for dies
//! instead of stalling it.
//!
//! # Simulation model
//!
//! Commands are processed **in dispatch order**: state changes —
//! buffer/caches, mapping table, flash programs, GC — happen at
//! dispatch time, atomically per command. With a single queue and
//! [`GcMode::Synchronous`], dispatch order is submission order and the
//! device's final state is *identical at every queue depth* to the
//! legacy blocking [`Ssd::read`]/[`Ssd::write`] path (the
//! `engine_equivalence` proptests pin this; depth 1 is additionally
//! cycle-exact). What queue depth, queue count, arbitration policy and
//! GC mode change is *which command dispatches next* and *time*: flash
//! work is chained on per-die timelines from each command's dispatch
//! point, the global clock only advances when the host must wait, and
//! completions retire out of order.
//!
//! # Pipelined translation
//!
//! Within one dispatched read burst, translation is a pipeline *stage*
//! rather than a serial prefix: [`crate::Ssd::service_read_batch`]
//! applies all state changes in strict submission order (so digests and
//! counters match the blocking path exactly), then grants each mapping
//! shard's translation CPU to requests in *map-ready* order. A request
//! whose mapping is resident no longer waits behind an earlier
//! request's demand-paged translation read — its sub-µs lookup and its
//! data read overlap the slower request's flash traffic on the die
//! timelines, and the time a lookup does spend queued behind a busy
//! shard CPU is charged to
//! [`crate::SimStats::translation_stall_ns`]. Bursts of a single read
//! (queue depth 1) take the unpipelined path verbatim, which keeps the
//! depth-1 cycle-exactness guarantee above.
//!
//! # Background GC
//!
//! In [`GcMode::Background`] the flush path stops collecting at the
//! watermark. Instead the device selects victims exactly where the
//! synchronous collector would (free fraction below the low watermark,
//! refilled to the high watermark) but queues them as
//! [`Command::GcMigrate`] traffic that the arbiter schedules like any
//! other queue. Host writes are back-pressured only at the hard floor
//! ([`crate::SsdConfig::gc_hard_floor`]): a write or flush about to
//! dispatch while the *settled* free fraction — reclaimed blocks whose
//! erase has actually landed — sits below the floor stalls until
//! enough in-flight erases complete, which is the only point where
//! background GC blocks the host.
//!
//! # Example
//!
//! ```
//! use leaftl_flash::Lpa;
//! use leaftl_sim::{Device, DeviceConfig, ExactPageMap, IoRequest, Ssd, SsdConfig};
//!
//! # fn main() -> Result<(), leaftl_sim::SimError> {
//! let mut ssd = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
//! // Two tenant queues, eight outstanding commands, background GC.
//! let mut device = Device::new(&mut ssd, DeviceConfig::new(2, 8).background_gc());
//! for i in 0..64 {
//!     device.submit_to(0, IoRequest::write(Lpa::new(i), i * 3))?;
//!     device.submit_to(1, IoRequest::read(Lpa::new(i / 2)))?;
//! }
//! let completions = device.drain()?;
//! assert_eq!(completions.len(), 128);
//! # Ok(())
//! # }
//! ```

use crate::arbiter::{Arbiter, ArbiterView, QueueView, RoundRobin, Source};
use crate::config::{CompactionMode, GcMode};
use crate::error::SimError;
use crate::mapping::MappingScheme;
use crate::qos::{QosController, QosSpec, QosTick, SloClass};
use crate::request::{Command, IoCompletion, IoRequest};
use crate::ssd::Ssd;
use crate::trace::ArgValue;
use leaftl_flash::{BlockId, Lpa};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Queue/stream id stamped on background-GC completions — migrations
/// come from the device's internal queue, not any host submission
/// queue.
pub const GC_QUEUE: u32 = u32::MAX;

/// Queue/stream id stamped on background-compaction completions
/// ([`Command::Compact`]) — like [`GC_QUEUE`], internal device
/// traffic, not any host submission queue.
pub const COMPACT_QUEUE: u32 = u32::MAX - 1;

/// Queue/stream id stamped on background translation-log completions
/// ([`Command::MapLog`]) — checkpoint/delta page programs and log-block
/// reclaims are internal device traffic like GC and compaction, served
/// between the two (reclamation first, durability second, compaction
/// last).
pub const MAPLOG_QUEUE: u32 = u32::MAX - 2;

/// The background compaction scheduler's trigger thresholds: a
/// translation shard whose structural pressure
/// ([`crate::MappingScheme::shard_pressure`]) crosses *either* axis is
/// queued for a [`Command::Compact`] sweep. Level depth is the
/// lookup-latency trigger (every extra log-structured level is a
/// longer top-down search), segment count the memory trigger (the
/// §3.1 bound is restored by dropping shadowed segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionScheduler {
    /// Queue a shard once its deepest group reaches this many levels.
    pub level_threshold: u32,
    /// Queue a shard once it holds this many learned segments.
    pub segment_threshold: usize,
}

impl CompactionScheduler {
    /// Whether a shard at `levels`/`segments` pressure is due.
    fn due(&self, levels: u32, segments: usize) -> bool {
        levels >= self.level_threshold || segments >= self.segment_threshold
    }
}

impl Default for CompactionScheduler {
    /// Level-driven by default: compact a shard once lookups would
    /// walk 4 levels; the segment axis is effectively disabled.
    fn default() -> Self {
        CompactionScheduler {
            level_threshold: 4,
            segment_threshold: usize::MAX,
        }
    }
}

/// Construction-time shape of a [`Device`]: queue count, outstanding
/// host-command budget, GC scheduling mode and arbitration policy.
#[derive(Debug)]
pub struct DeviceConfig {
    /// Host submission queues (≥ 1).
    pub queues: usize,
    /// Outstanding host commands across all queues (≥ 1; depth 1 with
    /// one queue reproduces the blocking path cycle-exactly).
    pub queue_depth: usize,
    /// Whether GC runs synchronously in the flush path or as
    /// arbitrated background traffic.
    pub gc_mode: GcMode,
    /// Whether learned-table compaction runs inline in the flush path
    /// or as scheduled [`Command::Compact`] background traffic.
    pub compaction_mode: CompactionMode,
    /// Trigger thresholds for the background compaction scheduler
    /// (unused in [`CompactionMode::Inline`]).
    pub compaction: CompactionScheduler,
    /// The arbitration policy.
    pub arbiter: Box<dyn Arbiter>,
    /// Optional QoS control plane: per-queue SLOs plus the closed-loop
    /// controller that retunes the arbiter and throttles best-effort
    /// admission ([`crate::QosSpec`]). `None` (the default) leaves the
    /// device byte-identical to pre-QoS behaviour.
    pub qos: Option<QosSpec>,
    /// Attach a [`crate::TraceSink`] to the SSD for the device's
    /// lifetime: every die reservation, command lifecycle and
    /// control-plane decision is recorded for
    /// [`crate::TraceSink::export_chrome_json`]. Purely observational —
    /// scheduling and results are bit-identical either way.
    pub trace: bool,
}

impl DeviceConfig {
    /// `queues` submission queues at `queue_depth`, synchronous GC,
    /// round-robin arbitration.
    pub fn new(queues: usize, queue_depth: usize) -> Self {
        DeviceConfig {
            queues: queues.max(1),
            queue_depth: queue_depth.max(1),
            gc_mode: GcMode::Synchronous,
            compaction_mode: CompactionMode::Inline,
            compaction: CompactionScheduler::default(),
            arbiter: Box::new(RoundRobin::new()),
            qos: None,
            trace: false,
        }
    }

    /// The legacy-compatible shape: one queue, synchronous GC.
    pub fn single(queue_depth: usize) -> Self {
        DeviceConfig::new(1, queue_depth)
    }

    /// Switches GC to arbitrated background traffic.
    pub fn background_gc(mut self) -> Self {
        self.gc_mode = GcMode::Background;
        self
    }

    /// Sets the GC scheduling mode.
    pub fn with_gc_mode(mut self, mode: GcMode) -> Self {
        self.gc_mode = mode;
        self
    }

    /// Switches learned-table compaction to scheduled background
    /// traffic ([`Command::Compact`]) with the default thresholds.
    pub fn background_compaction(mut self) -> Self {
        self.compaction_mode = CompactionMode::Background;
        self
    }

    /// Sets the compaction scheduling mode.
    pub fn with_compaction_mode(mut self, mode: CompactionMode) -> Self {
        self.compaction_mode = mode;
        self
    }

    /// Sets the background compaction scheduler's trigger thresholds.
    pub fn with_compaction_thresholds(mut self, levels: u32, segments: usize) -> Self {
        self.compaction = CompactionScheduler {
            level_threshold: levels.max(1),
            segment_threshold: segments.max(1),
        };
        self
    }

    /// Replaces the arbitration policy.
    pub fn with_arbiter(mut self, arbiter: Box<dyn Arbiter>) -> Self {
        self.arbiter = arbiter;
        self
    }

    /// Attaches the closed-loop QoS control plane: per-queue SLOs plus
    /// controller tuning. The controller retunes the arbiter's
    /// per-queue weights ([`Arbiter::set_weight`]) at every control
    /// tick and defers best-effort block-consuming commands near the
    /// GC hard floor. Pair it with a [`crate::Weighted`] arbiter —
    /// weightless policies ignore the retunes (admission throttling
    /// still applies).
    pub fn with_qos(mut self, qos: QosSpec) -> Self {
        self.qos = Some(qos);
        self
    }

    /// Enables timeline tracing for the device's lifetime (see
    /// [`DeviceConfig::trace`]). Collect the recording afterwards with
    /// [`crate::Ssd::take_trace`].
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// One host submission queue: FIFO pending commands plus the arrival
/// clamp floor.
#[derive(Debug, Default)]
struct HostQueue {
    pending: VecDeque<(u64, IoRequest)>,
    /// Largest arrival accepted so far: per-queue submissions are FIFO,
    /// so a later submission with an earlier timestamp is clamped up.
    arrival_floor_ns: u64,
}

/// A selected-but-not-dispatched background migration.
#[derive(Debug, Clone, Copy)]
struct PendingMigration {
    victim: BlockId,
    /// Erase count at selection — a mismatch at dispatch means the
    /// block was reclaimed (and possibly refilled) in the meantime.
    selected_erase_count: u32,
    /// Projected net reclaim in blocks: the victim frees one block but
    /// its live pages consume GC-stream space, so a block with `v`
    /// valid pages nets `(pages_per_block − v) / pages_per_block`.
    net_blocks: f64,
}

/// The multi-queue device front-end over a borrowed [`Ssd`].
///
/// Run the backlog down with [`Device::drain`] before letting the
/// device go: dropping it with host commands still pending silently
/// discards them, which debug builds treat as a caller bug
/// (`debug_assert`). Drop always restores the SSD's blocking-path
/// contract (synchronous GC, inline compaction).
#[derive(Debug)]
pub struct Device<'a, S: MappingScheme + Clone> {
    ssd: &'a mut Ssd<S>,
    queues: Vec<HostQueue>,
    queue_depth: usize,
    arbiter: Box<dyn Arbiter>,
    next_id: u64,
    /// Pending background migrations (victims selected, not yet
    /// dispatched), stamped with the victim's erase count at selection
    /// (so a block reclaimed in the meantime no-ops at dispatch) and
    /// its projected net reclaim in block fractions.
    gc_pending: VecDeque<PendingMigration>,
    /// Victims currently queued, for selection exclusion.
    gc_queued: HashSet<BlockId>,
    /// Sum of the pending migrations' net reclaim, in blocks — the
    /// replenishment projection.
    gc_pending_net_blocks: f64,
    /// Flash-op stamp (`total_programs`, `erases`) of the last victim
    /// scan that came up empty: the victim set can only change through
    /// programs or erases, so an identical stamp skips the O(blocks)
    /// rescan on every dispatch while the device is pinned below the
    /// watermark with nothing collectible.
    gc_scan_exhausted: Option<(u64, u64)>,
    /// Scratch buffer for the per-dispatch arbiter view (reused to
    /// avoid a per-command allocation).
    view_scratch: Vec<QueueView>,
    /// Completion times of dispatched host commands (min-heap); its
    /// size is the outstanding host-command count.
    inflight: BinaryHeap<Reverse<u64>>,
    /// Completion times of dispatched GC migrations (timing only — GC
    /// never counts against the host queue depth).
    gc_inflight: BinaryHeap<Reverse<u64>>,
    completed: Vec<IoCompletion>,
    /// Latest completion deadline of any dispatched migration; host
    /// commands dispatched before it carry the `gc_overlap` bit.
    gc_busy_until: u64,
    /// Migrations dispatched so far.
    gc_dispatched: u64,
    /// Virtual time host writes spent blocked at the hard floor.
    gc_stall_ns: u64,
    /// Background compaction scheduler thresholds.
    compaction: CompactionScheduler,
    /// Shards queued for a background compaction sweep, FIFO.
    compact_pending: VecDeque<usize>,
    /// Shard ids currently queued, for scan dedup.
    compact_queued: HashSet<usize>,
    /// Each shard's pressure snapshot right after its last dispatched
    /// compaction: pressure only changes through learning in *that
    /// shard*, so while the snapshot still matches, another sweep
    /// cannot make progress — the guard that keeps aggressive
    /// threshold configs (a threshold at or below a shard's live
    /// segment population) from re-compacting a shard on every flush
    /// that only touched its neighbours.
    compact_stamp: Vec<Option<crate::mapping::ShardPressure>>,
    /// Program stamp of the last pressure scan (scan skipped while it
    /// is unchanged).
    compact_scan_stamp: Option<u64>,
    /// Compaction sweeps dispatched so far.
    compact_dispatched: u64,
    /// Translation-log ops dispatched so far.
    maplog_dispatched: u64,
    /// Device commands dispatched so far — host commands (each read in
    /// a burst counts), migrations, compactions, and translation-log
    /// ops. The coordinate crash-point injection cuts at.
    dispatches: u64,
    /// Remaining dispatch budget once crash injection is armed; at
    /// zero the device freezes (pump returns with work still queued).
    dispatch_budget: Option<u64>,
    /// Set when a dispatch error surfaced through `submit`/`drain`;
    /// the drop-time "undrained device" assert stands down, since the
    /// caller is already unwinding a failed run.
    poisoned: bool,
    /// The closed-loop QoS controller (absent on non-QoS devices —
    /// which then behave byte-identically to pre-QoS builds).
    qos: Option<QosController>,
    /// Per-queue virtual time the head spent deferred by QoS admission
    /// throttling.
    admission_wait_ns: Vec<u64>,
    /// When the queue's current admission deferral window opened
    /// (`None` while not deferred).
    admission_deferred_since: Vec<Option<u64>>,
    /// Completion times of in-flight best-effort host commands (subset
    /// of `inflight`) — sized against `be_slot_cap` so best-effort
    /// traffic can never hold every depth slot.
    be_inflight: BinaryHeap<Reverse<u64>>,
    /// Maximum in-flight best-effort commands (`queue_depth` minus the
    /// controller's guaranteed slot reserve, floored at one; the full
    /// depth without a QoS controller).
    be_slot_cap: usize,
}

impl<'a, S: MappingScheme + Clone> Device<'a, S> {
    /// Wraps an SSD in a multi-queue front-end. The SSD's GC mode is
    /// set from the config for the device's lifetime and restored to
    /// synchronous on drop.
    pub fn new(ssd: &'a mut Ssd<S>, config: DeviceConfig) -> Self {
        ssd.set_gc_mode(config.gc_mode);
        ssd.set_compaction_mode(config.compaction_mode);
        if config.trace {
            ssd.attach_trace();
        }
        let shard_count = ssd.shard_count();
        let mut queues = Vec::with_capacity(config.queues);
        queues.resize_with(config.queues, HostQueue::default);
        let mut arbiter = config.arbiter;
        let qos = config.qos.map(|spec| {
            let controller = QosController::new(spec, config.queues);
            // Program the controller's initial weights so the very
            // first dispatches already run under the base policy.
            for queue in 0..config.queues {
                arbiter.set_weight(queue, controller.weight(queue));
            }
            controller
        });
        let be_slot_cap = match &qos {
            Some(controller) => config
                .queue_depth
                .saturating_sub(controller.guaranteed_slot_reserve() as usize)
                .max(1),
            None => config.queue_depth,
        };
        Device {
            ssd,
            queues,
            queue_depth: config.queue_depth,
            arbiter,
            next_id: 0,
            gc_pending: VecDeque::new(),
            gc_queued: HashSet::new(),
            gc_pending_net_blocks: 0.0,
            gc_scan_exhausted: None,
            view_scratch: Vec::new(),
            inflight: BinaryHeap::new(),
            gc_inflight: BinaryHeap::new(),
            completed: Vec::new(),
            gc_busy_until: 0,
            gc_dispatched: 0,
            gc_stall_ns: 0,
            compaction: config.compaction,
            compact_pending: VecDeque::new(),
            compact_queued: HashSet::new(),
            compact_stamp: vec![None; shard_count],
            compact_scan_stamp: None,
            compact_dispatched: 0,
            maplog_dispatched: 0,
            dispatches: 0,
            dispatch_budget: None,
            poisoned: false,
            admission_wait_ns: vec![0; config.queues],
            admission_deferred_since: vec![None; config.queues],
            be_inflight: BinaryHeap::new(),
            be_slot_cap,
            qos,
        }
    }

    /// Number of host submission queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// The outstanding host-command budget.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Read access to the underlying SSD.
    pub fn ssd(&self) -> &Ssd<S> {
        self.ssd
    }

    /// Host commands currently dispatched and not yet retired.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Background migrations dispatched so far.
    pub fn gc_dispatched(&self) -> u64 {
        self.gc_dispatched
    }

    /// Virtual nanoseconds host writes spent blocked at the hard floor
    /// waiting for a forced migration.
    pub fn gc_stall_ns(&self) -> u64 {
        self.gc_stall_ns
    }

    /// Background compaction sweeps dispatched so far.
    pub fn compact_dispatched(&self) -> u64 {
        self.compact_dispatched
    }

    /// Total virtual nanoseconds host queue heads spent deferred by
    /// QoS admission throttling (always 0 without a controller).
    pub fn admission_wait_ns(&self) -> u64 {
        self.admission_wait_ns.iter().sum()
    }

    /// Per-queue virtual nanoseconds the queue's head spent deferred
    /// by QoS admission throttling.
    pub fn admission_wait_per_queue(&self) -> &[u64] {
        &self.admission_wait_ns
    }

    /// The QoS controller's control-tick log (empty without a
    /// controller).
    pub fn qos_ticks(&self) -> &[QosTick] {
        self.qos.as_ref().map_or(&[], |qos| qos.ticks())
    }

    /// Background translation-log ops dispatched so far (checkpoint or
    /// delta page programs, and log-block reclaims).
    pub fn maplog_dispatched(&self) -> u64 {
        self.maplog_dispatched
    }

    /// Device commands dispatched so far across all traffic classes —
    /// each read in a burst counts one, as do migrations, compactions
    /// and translation-log ops. This is the coordinate crash-point
    /// injection cuts at: run a workload once, read this off, then
    /// sweep [`Device::halt_after_dispatches`] over `0..=dispatches`.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Arms deterministic crash-point injection: after `n` more
    /// dispatched commands the device halts — nothing further applies
    /// state or advances time — and [`Device::halted`] turns true.
    /// Follow with [`Device::power_cut`] and
    /// [`Ssd::crash_and_recover`] to simulate a power failure mid-run
    /// (including mid-checkpoint and mid-log-reclaim, since every log
    /// page program is its own dispatch).
    pub fn halt_after_dispatches(&mut self, n: u64) {
        self.dispatch_budget = Some(n);
    }

    /// Whether an armed dispatch budget has run out (the device is
    /// frozen at the cut point).
    pub fn halted(&self) -> bool {
        self.dispatch_budget == Some(0)
    }

    /// Simulates the power failing at the cut point: consumes the
    /// device, discarding everything still queued in its DRAM (pending
    /// host commands, selected victims, queued log ops) without the
    /// drop-time undrained assert. Flash state survives on the
    /// borrowed SSD — follow with [`Ssd::crash_and_recover`].
    pub fn power_cut(mut self) {
        self.poisoned = true;
    }

    /// Counts `n` dispatched commands against the crash-injection
    /// budget (if armed) and the lifetime dispatch counter.
    fn consume_budget(&mut self, n: u64) {
        self.dispatches += n;
        if let Some(budget) = &mut self.dispatch_budget {
            *budget = budget.saturating_sub(n);
        }
    }

    /// Enqueues a host command on submission queue `queue`, returning
    /// its device-assigned id. Dispatch happens once a full
    /// queue-depth batch is pending across all queues (or on
    /// [`Device::drain`]); deferring dispatch lets a burst of reads
    /// share one mapping-table traversal.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownQueue`] — no such submission queue.
    /// * [`SimError::LpaOutOfRange`] — rejected at submission.
    /// * Flush/GC-path errors (e.g. [`SimError::DeviceFull`]) surface
    ///   when the batch is processed.
    ///
    /// # Panics
    ///
    /// Panics if the request carries a [`Command::GcMigrate`],
    /// [`Command::Compact`] or [`Command::MapLog`] — background
    /// migrations, compactions and translation-log writes are internal
    /// device traffic, not host-submittable.
    pub fn submit_to(&mut self, queue: usize, request: IoRequest) -> Result<u64, SimError> {
        let id = self.enqueue_to(queue, request)?;
        if self.pending_total() >= self.queue_depth {
            if let Err(e) = self.pump() {
                self.poisoned = true;
                return Err(e);
            }
        }
        Ok(id)
    }

    /// Enqueues a host command on `queue` *without* running the pump —
    /// open-loop submission. [`Device::submit_to`] models a closed-loop
    /// submitter (it blocks — pumps — once a queue-depth's worth of
    /// commands is pending), which is wrong for timestamped open-loop
    /// traces: the pump would only ever see the next queue-depth
    /// commands of the timeline, so one head deferred on a slow wake
    /// (a GC-round erase, a best-effort slot) advances the clock past
    /// arrivals the device was never shown, charging them phantom
    /// queueing delay. Open-loop callers enqueue the whole trace, then
    /// [`Device::drain`]; arrival timestamps keep future commands from
    /// dispatching early.
    pub fn enqueue_to(&mut self, queue: usize, request: IoRequest) -> Result<u64, SimError> {
        assert!(
            !matches!(
                request.command,
                Command::GcMigrate { .. } | Command::Compact { .. } | Command::MapLog { .. }
            ),
            "GC migrations, compactions and translation-log writes are internal device traffic"
        );
        if queue >= self.queues.len() {
            return Err(SimError::UnknownQueue(queue));
        }
        if let Some(lpa) = request.command.lpa() {
            if lpa.raw() >= self.ssd.config().logical_pages() {
                return Err(SimError::LpaOutOfRange(lpa));
            }
        }
        let mut request = request;
        let slot = &mut self.queues[queue];
        request.arrival_ns = request.arrival_ns.max(slot.arrival_floor_ns);
        slot.arrival_floor_ns = request.arrival_ns;
        let id = self.next_id;
        self.next_id += 1;
        slot.pending.push_back((id, request));
        Ok(id)
    }

    /// Enqueues a host command on the queue named by its stream id
    /// (`stream % queue_count` — the replay helpers' tenant→queue map).
    pub fn submit(&mut self, request: IoRequest) -> Result<u64, SimError> {
        let queue = request.stream as usize % self.queues.len();
        self.submit_to(queue, request)
    }

    /// Convenience: submit an ASAP read on queue 0 / stream 0.
    pub fn submit_read(&mut self, lpa: Lpa) -> Result<u64, SimError> {
        self.submit_to(0, IoRequest::read(lpa))
    }

    /// Convenience: submit an ASAP write on queue 0 / stream 0.
    pub fn submit_write(&mut self, lpa: Lpa, content: u64) -> Result<u64, SimError> {
        self.submit_to(0, IoRequest::write(lpa, content))
    }

    /// Takes the completions retired so far, ordered by completion
    /// time (ties by submission id).
    pub fn take_completions(&mut self) -> Vec<IoCompletion> {
        let mut done = std::mem::take(&mut self.completed);
        done.sort_by_key(|c| (c.complete_ns, c.id));
        done
    }

    /// Dispatches everything still pending — host commands through the
    /// arbiter, queued migrations as trailing background work — waits
    /// for every in-flight host command (advancing the clock to the
    /// last completion), and returns all unretired completions ordered
    /// by completion time. Background migrations appear as
    /// [`Command::GcMigrate`] completions on the [`GC_QUEUE`];
    /// trailing migrations keep their die reservations but the host
    /// does not wait on them.
    pub fn drain(&mut self) -> Result<Vec<IoCompletion>, SimError> {
        if let Err(e) = self.pump() {
            self.poisoned = true;
            return Err(e);
        }
        while let Some(Reverse(complete_ns)) = self.inflight.pop() {
            self.ssd.advance_to(complete_ns);
        }
        // Trailing migrations stay in `gc_inflight` — their erases
        // have not landed, so post-drain submissions must still see
        // them in the settled-free accounting (retire_due pops them as
        // the clock catches up).
        self.retire_due();
        Ok(self.take_completions())
    }

    fn pending_total(&self) -> usize {
        self.queues.iter().map(|q| q.pending.len()).sum()
    }

    /// Retires dispatched entries whose completion time has passed.
    fn retire_due(&mut self) {
        let now = self.ssd.now_ns();
        while matches!(self.inflight.peek(), Some(&Reverse(c)) if c <= now) {
            self.inflight.pop();
        }
        while matches!(self.be_inflight.peek(), Some(&Reverse(c)) if c <= now) {
            self.be_inflight.pop();
        }
        while matches!(self.gc_inflight.peek(), Some(&Reverse(c)) if c <= now) {
            self.gc_inflight.pop();
        }
    }

    /// Tops the background-GC queue up: below the low watermark,
    /// victims are selected (exactly as the synchronous collector
    /// would, minus already-queued ones) until the queued reclaims
    /// project the free fraction back to the high watermark.
    fn replenish_gc(&mut self) {
        if self.ssd.gc_mode() != GcMode::Background {
            return;
        }
        let geometry = self.ssd.config().geometry;
        let blocks = geometry.blocks as f64;
        let free = self.ssd.free_fraction();
        let projected = |pending_net: f64| free + pending_net / blocks;
        if projected(self.gc_pending_net_blocks) >= self.ssd.config().gc_low_watermark {
            self.gc_scan_exhausted = None;
            return;
        }
        let flash = &self.ssd.stats().flash;
        let stamp = (flash.total_programs(), flash.erases);
        if self.gc_scan_exhausted == Some(stamp) {
            return;
        }
        while projected(self.gc_pending_net_blocks) < self.ssd.config().gc_high_watermark {
            let Some(victim) = self.ssd.select_gc_victim(&self.gc_queued) else {
                self.gc_scan_exhausted = Some(stamp);
                return;
            };
            self.gc_queued.insert(victim);
            // Project the *net* reclaim: the freed block minus the
            // GC-stream pages its live data will consume. (Greedy
            // victims always have at least one stale page, so the net
            // is positive and the loop terminates.)
            let valid = self.ssd.gc_valid_count(victim) as f64;
            let net_blocks = ((geometry.pages_per_block as f64 - valid)
                / geometry.pages_per_block as f64)
                .max(1.0 / geometry.pages_per_block as f64);
            self.gc_pending_net_blocks += net_blocks;
            if self.ssd.trace_enabled() {
                let now = self.ssd.now_ns();
                self.ssd.tracer_mut().control_instant(
                    "gc_select",
                    now,
                    vec![
                        ("victim", ArgValue::U64(victim.raw() as u64)),
                        ("net_blocks", ArgValue::F64(net_blocks)),
                    ],
                );
            }
            self.gc_pending.push_back(PendingMigration {
                victim,
                selected_erase_count: self.ssd.erase_count(victim),
                net_blocks,
            });
        }
        self.gc_scan_exhausted = None;
    }

    /// Tops the background-compaction queue up: every translation
    /// shard whose structural pressure crossed the scheduler's level or
    /// segment threshold — *and* whose pressure changed since its last
    /// sweep (another sweep of unchanged structures cannot make
    /// progress) — is queued for one [`Command::Compact`] sweep. The
    /// scan is stamped by the flash program count — pressure only
    /// changes through learning, which only happens on programs, so
    /// the O(shards × groups) pressure walk runs once per flush rather
    /// than once per dispatch.
    fn replenish_compaction(&mut self) {
        if self.ssd.compaction_mode() != CompactionMode::Background {
            return;
        }
        let programs = self.ssd.stats().flash.total_programs();
        if self.compact_scan_stamp == Some(programs) {
            return;
        }
        self.compact_scan_stamp = Some(programs);
        for shard in 0..self.compact_stamp.len() {
            if self.compact_queued.contains(&shard) {
                continue;
            }
            let pressure = self.ssd.shard_pressure(shard);
            if self.compact_stamp[shard] == Some(pressure) {
                continue;
            }
            if self.compaction.due(pressure.levels, pressure.segments) {
                self.compact_queued.insert(shard);
                self.compact_pending.push_back(shard);
                if self.ssd.trace_enabled() {
                    let now = self.ssd.now_ns();
                    self.ssd.tracer_mut().control_instant(
                        "compact_select",
                        now,
                        vec![
                            ("shard", ArgValue::U64(shard as u64)),
                            ("levels", ArgValue::U64(pressure.levels as u64)),
                            ("segments", ArgValue::U64(pressure.segments as u64)),
                        ],
                    );
                }
            }
        }
    }

    /// Dispatches the next queued compaction as a [`Command::Compact`]:
    /// the shard's structures compact at dispatch (state-at-dispatch,
    /// like every other command) and the sweep's CPU cost lands on the
    /// shard's translation-CPU timeline, where concurrent lookups must
    /// wait for it. Retires as an [`IoCompletion`] on the
    /// [`COMPACT_QUEUE`] so reports and tests observe compaction
    /// traffic alongside host commands.
    fn dispatch_compact(&mut self) -> Result<Option<u64>, SimError> {
        let Some(shard) = self.compact_pending.pop_front() else {
            return Ok(None);
        };
        self.compact_queued.remove(&shard);
        self.consume_budget(1);
        let dispatch_ns = self.ssd.now_ns();
        let deadline = self.ssd.service_compact(shard)?;
        // Snapshot the *post-sweep* pressure: until learning changes it
        // again, this shard cannot be re-queued.
        self.compact_stamp[shard] = Some(self.ssd.shard_pressure(shard));
        self.compact_dispatched += 1;
        if self.ssd.trace_enabled() {
            self.ssd.tracer_mut().queue_span(
                COMPACT_QUEUE,
                "compact",
                dispatch_ns,
                deadline,
                vec![("shard", ArgValue::U64(shard as u64))],
            );
        }
        let id = self.next_id;
        self.next_id += 1;
        self.completed.push(IoCompletion {
            id,
            queue: COMPACT_QUEUE,
            stream: COMPACT_QUEUE,
            command: Command::Compact { shard },
            data: None,
            arrival_ns: dispatch_ns,
            dispatch_ns,
            complete_ns: deadline,
            gc_overlap: false,
        });
        Ok(Some(deadline))
    }

    /// Dispatches the next queued migration as a
    /// [`Command::GcMigrate`]; returns its completion deadline (or
    /// `None` when the queue is empty). The migration retires as an
    /// [`IoCompletion`] on the [`GC_QUEUE`], so replay reports and
    /// tests can observe background traffic alongside host commands.
    fn dispatch_gc(&mut self) -> Result<Option<u64>, SimError> {
        let (victim, selected_erase_count) = loop {
            let Some(pending) = self.gc_pending.pop_front() else {
                return Ok(None);
            };
            self.gc_queued.remove(&pending.victim);
            self.gc_pending_net_blocks = (self.gc_pending_net_blocks - pending.net_blocks).max(0.0);
            // A changed erase count means the victim was reclaimed (by
            // the emergency synchronous fallback) since selection —
            // skip it silently rather than recording a no-op migration
            // in gc_dispatched and the completion log.
            if self.ssd.erase_count(pending.victim) == pending.selected_erase_count {
                break (pending.victim, pending.selected_erase_count);
            }
        };
        let command = Command::GcMigrate { victim };
        self.consume_budget(1);
        let dispatch_ns = self.ssd.now_ns();
        let deadline = self.ssd.service_gc_migrate(victim, selected_erase_count)?;
        self.gc_inflight.push(Reverse(deadline));
        self.gc_busy_until = self.gc_busy_until.max(deadline);
        self.gc_dispatched += 1;
        if self.ssd.trace_enabled() {
            self.ssd.tracer_mut().queue_span(
                GC_QUEUE,
                "gc_migrate",
                dispatch_ns,
                deadline,
                vec![("victim", ArgValue::U64(victim.raw() as u64))],
            );
        }
        let id = self.next_id;
        self.next_id += 1;
        self.completed.push(IoCompletion {
            id,
            queue: GC_QUEUE,
            stream: GC_QUEUE,
            command,
            data: None,
            arrival_ns: dispatch_ns,
            dispatch_ns,
            complete_ns: deadline,
            gc_overlap: false,
        });
        Ok(Some(deadline))
    }

    /// Dispatches the next queued translation-log op as a
    /// [`Command::MapLog`] on the [`MAPLOG_QUEUE`]: one checkpoint or
    /// delta page program, or one superseded log-block erase. State
    /// applies at dispatch like every other command. Only reclaims
    /// enter the settled-free deduction (their erase returns a block
    /// to the pool once it lands; page programs must not be deducted).
    fn dispatch_maplog(&mut self) -> Result<Option<u64>, SimError> {
        let Some(dispatch) = self.ssd.service_maplog()? else {
            return Ok(None);
        };
        self.consume_budget(1);
        let dispatch_ns = self.ssd.now_ns();
        let deadline = dispatch.complete_ns;
        if dispatch.reclaimed_block {
            self.gc_inflight.push(Reverse(deadline));
            self.gc_busy_until = self.gc_busy_until.max(deadline);
        }
        self.maplog_dispatched += 1;
        if self.ssd.trace_enabled() {
            self.ssd.tracer_mut().queue_span(
                MAPLOG_QUEUE,
                dispatch.label,
                dispatch_ns,
                deadline,
                vec![("seq", ArgValue::U64(dispatch.seq))],
            );
        }
        let id = self.next_id;
        self.next_id += 1;
        self.completed.push(IoCompletion {
            id,
            queue: MAPLOG_QUEUE,
            stream: MAPLOG_QUEUE,
            command: Command::MapLog { seq: dispatch.seq },
            data: None,
            arrival_ns: dispatch_ns,
            dispatch_ns,
            complete_ns: deadline,
            gc_overlap: false,
        });
        Ok(Some(deadline))
    }

    /// Free-block fraction counting only *settled* reclaims: a
    /// dispatched migration applies its state instantly (the
    /// simulation fiction), but physically its block is not writable
    /// until the erase lands — so in-flight migrations are deducted.
    fn settled_free_fraction(&self) -> f64 {
        let blocks = self.ssd.config().geometry.blocks as f64;
        self.ssd.free_fraction() - self.gc_inflight.len() as f64 / blocks
    }

    /// Hard-floor back-pressure: a block-consuming host command about
    /// to dispatch while the settled free fraction sits below the
    /// floor stalls until enough in-flight erases land (forcing more
    /// migrations if none are in flight) — the only point where
    /// background GC blocks the host.
    fn enforce_hard_floor(&mut self) -> Result<(), SimError> {
        // A floor above the low watermark makes no sense (the trigger
        // line sits below the refill line); clamp rather than reject,
        // so configs that only lower the watermarks keep working.
        let floor = self
            .ssd
            .config()
            .gc_hard_floor
            .min(self.ssd.config().gc_low_watermark);
        if floor <= 0.0 {
            return Ok(());
        }
        while self.settled_free_fraction() < floor {
            if let Some(Reverse(erase_done)) = self.gc_inflight.pop() {
                // Wait for the earliest in-flight erase to land.
                let stall_from = self.ssd.now_ns();
                self.ssd.advance_to(erase_done);
                let stalled = self.ssd.now_ns().saturating_sub(stall_from);
                self.gc_stall_ns += stalled;
                if stalled > 0 && self.ssd.trace_enabled() {
                    self.ssd.tracer_mut().control_instant(
                        "gc_stall",
                        erase_done,
                        vec![("stall_ns", ArgValue::U64(stalled))],
                    );
                }
                continue;
            }
            self.replenish_gc();
            if self.dispatch_gc()?.is_none() {
                // Nothing collectible: the flush path's emergency
                // synchronous fallback is the last line of defence.
                return Ok(());
            }
        }
        Ok(())
    }

    /// Whether QoS admission throttling is squeezing best-effort
    /// block-consuming commands right now: the settled free fraction
    /// sits within the controller's margin of the GC hard floor while
    /// reclaim erases are in flight. The in-flight requirement keeps
    /// the gate live-lock free — a deferred head always has a concrete
    /// erase completion to wake on — and below the floor with nothing
    /// in flight the hard-floor path (which can force migrations) is
    /// the right tool anyway.
    fn admission_pressured(&self) -> bool {
        let Some(qos) = &self.qos else { return false };
        if self.ssd.gc_mode() != GcMode::Background || self.gc_inflight.is_empty() {
            return false;
        }
        let floor = self
            .ssd
            .config()
            .gc_hard_floor
            .min(self.ssd.config().gc_low_watermark);
        floor > 0.0 && self.settled_free_fraction() < floor + qos.admission_margin()
    }

    /// Runs a QoS control tick if one is due: feeds the controller the
    /// device's interference attribution, then re-programs the
    /// arbiter's per-queue weights.
    fn qos_tick_if_due(&mut self) {
        let now = self.ssd.now_ns();
        if !self.qos.as_ref().is_some_and(|qos| qos.due(now)) {
            return;
        }
        let settled = self.settled_free_fraction();
        let gc_stall = self.gc_stall_ns;
        let translation_stall = self.ssd.stats().translation_stall_ns;
        let qos = self.qos.as_mut().expect("due implies a controller");
        qos.tick(now, gc_stall, translation_stall, settled);
        for queue in 0..self.queues.len() {
            self.arbiter.set_weight(queue, qos.weight(queue));
        }
        if self.ssd.trace_enabled() {
            let args = self
                .qos
                .as_ref()
                .and_then(|qos| qos.last_tick())
                .map(|tick| {
                    vec![
                        ("worst_error", ArgValue::F64(tick.worst_error)),
                        (
                            "settled_free_fraction",
                            ArgValue::F64(tick.settled_free_fraction),
                        ),
                        ("gc_stall_delta_ns", ArgValue::U64(tick.gc_stall_delta_ns)),
                        ("be_weight", ArgValue::U64(tick.best_effort_weight as u64)),
                    ]
                })
                .unwrap_or_default();
            self.ssd.tracer_mut().control_instant("qos_tick", now, args);
        }
    }

    /// Dispatches pending commands until every host queue is empty,
    /// respecting arrivals, the queue depth, and the arbiter.
    fn pump(&mut self) -> Result<(), SimError> {
        loop {
            if self.halted() {
                // Crash injection: the budget ran out — freeze with
                // whatever is still queued (power_cut discards it).
                return Ok(());
            }
            self.retire_due();
            self.replenish_gc();
            self.replenish_compaction();
            self.qos_tick_if_due();
            let host_pending = self.pending_total();
            if host_pending == 0
                && self.gc_pending.is_empty()
                && self.compact_pending.is_empty()
                && self.ssd.maplog_pending() == 0
            {
                return Ok(());
            }

            let now = self.ssd.now_ns();
            // Host commands are dispatchable when arrived and a depth
            // slot is free; GC is always dispatchable. The view lives
            // in a reused scratch buffer (one dispatch per iteration —
            // no per-command allocation).
            let host_blocked = self.inflight.len() >= self.queue_depth;
            let admission_pressured = self.admission_pressured();
            let be_slots_full = self.be_inflight.len() >= self.be_slot_cap;
            // GC pacing: with a controller active, queued migrations
            // are invisible to the arbiter while the concurrency limit
            // is reached — the backlog trickles out as erases land
            // instead of monopolising every die in one mega-round.
            let gc_throttled = self.qos.as_ref().is_some_and(|qos| {
                qos.gc_pacing_limit() > 0 && self.gc_inflight.len() >= qos.gc_pacing_limit()
            }) && !self.gc_pending.is_empty();
            let gc_dispatchable = if gc_throttled {
                0
            } else {
                self.gc_pending.len()
            };
            let mut deferred_any = false;
            self.view_scratch.clear();
            for queue in 0..self.queues.len() {
                let pending = self.queues[queue].pending.len();
                let head = self.queues[queue].pending.front();
                let mut head_ready =
                    !host_blocked && head.is_some_and(|&(_, r)| r.arrival_ns <= now);
                if head_ready {
                    // Admission throttling: a best-effort head is held
                    // back while its class has used up its slot share
                    // (the guaranteed reserve keeps depth slots turning
                    // over for SLO tenants even when a burst of
                    // best-effort writes is stacked behind a long
                    // migrate+erase round), or — near the GC hard
                    // floor — when it would consume blocks the settled
                    // headroom should keep for guaranteed tenants. The
                    // deferred time accrues to `admission_wait_ns`.
                    let consumes = head.is_some_and(|&(_, r)| r.command.consumes_blocks());
                    let best_effort = self
                        .qos
                        .as_ref()
                        .is_some_and(|qos| qos.class(queue) == SloClass::BestEffort);
                    if best_effort && (be_slots_full || (admission_pressured && consumes)) {
                        head_ready = false;
                        deferred_any = true;
                        if self.admission_deferred_since[queue].is_none() {
                            self.admission_deferred_since[queue] = Some(now);
                            if self.ssd.trace_enabled() {
                                self.ssd.tracer_mut().control_instant(
                                    "admission_defer",
                                    now,
                                    vec![("queue", ArgValue::U64(queue as u64))],
                                );
                            }
                        }
                    } else if let Some(since) = self.admission_deferred_since[queue].take() {
                        self.admission_wait_ns[queue] += now.saturating_sub(since);
                        if self.ssd.trace_enabled() {
                            self.ssd.tracer_mut().control_instant(
                                "admission_resume",
                                now,
                                vec![
                                    ("queue", ArgValue::U64(queue as u64)),
                                    ("waited_ns", ArgValue::U64(now.saturating_sub(since))),
                                ],
                            );
                        }
                    }
                }
                self.view_scratch.push(QueueView {
                    pending,
                    head_ready,
                });
            }
            let ready_hosts = self.view_scratch.iter().filter(|q| q.head_ready).count();

            if ready_hosts == 0
                && gc_dispatchable == 0
                && self.compact_pending.is_empty()
                && self.ssd.maplog_pending() == 0
            {
                if host_blocked {
                    // Queue full: the host blocks until the earliest
                    // in-flight command completes.
                    let Reverse(complete_ns) = self.inflight.pop().expect("non-empty");
                    self.ssd.advance_to(complete_ns);
                } else {
                    // Everything pending arrives in the future — except
                    // heads the admission control deferred, which wake
                    // when the earliest in-flight reclaim erase lands
                    // (the floor gate requires one) or when a
                    // best-effort slot frees (the slot cap requires a
                    // full best-effort in-flight set) — so a wake
                    // target always exists and past-arrival heads
                    // cannot spin.
                    let earliest_arrival = self
                        .queues
                        .iter()
                        .filter_map(|q| q.pending.front())
                        .map(|&(_, r)| r.arrival_ns)
                        .filter(|&arrival| arrival > now)
                        .min();
                    let erase_wake = (deferred_any || gc_throttled)
                        .then(|| self.gc_inflight.peek().map(|&Reverse(t)| t))
                        .flatten();
                    let slot_wake = deferred_any
                        .then(|| self.be_inflight.peek().map(|&Reverse(t)| t))
                        .flatten();
                    let wake = [earliest_arrival, erase_wake, slot_wake]
                        .into_iter()
                        .flatten()
                        .min()
                        .unwrap_or_else(|| {
                            unreachable!("a deferred head has an in-flight wake source")
                        });
                    self.ssd.advance_to(wake);
                }
                continue;
            }

            let view = ArbiterView {
                host: &self.view_scratch,
                gc_pending: gc_dispatchable,
                compact_pending: self.compact_pending.len(),
                maplog_pending: self.ssd.maplog_pending(),
                free_fraction: self.ssd.free_fraction(),
                now_ns: now,
            };
            let mut source = self.arbiter.pick(&view);
            if !view.is_ready(source) {
                // A buggy policy degrades to FIFO, never wedges.
                source = view.ready_sources().next().expect("a source is ready");
            }
            // Read bursts are capped at the picked queue's fair share
            // of the free depth, so batching (which amortises the
            // mapping traversal) cannot turn per-command arbitration
            // into whole-queue-depth bursts while other sources wait.
            let background_ready = gc_dispatchable > 0
                || !self.compact_pending.is_empty()
                || self.ssd.maplog_pending() > 0;
            let ready_sources = ready_hosts + usize::from(background_ready);
            match source {
                Source::Gc => {
                    // The internal background source: space reclamation
                    // first (it guards correctness, but respects the
                    // pacing limit), then translation-log durability,
                    // then compaction.
                    if (gc_throttled || self.dispatch_gc()?.is_none())
                        && self.dispatch_maplog()?.is_none()
                    {
                        self.dispatch_compact()?;
                    }
                }
                Source::Host(queue) => self.dispatch_host(queue, ready_sources)?,
            }
        }
    }

    /// Dispatches the head command (or, for reads, the leading arrived
    /// read burst, capped at this queue's fair share of the free depth
    /// among `ready_sources` contenders) of host queue `queue`.
    fn dispatch_host(&mut self, queue: usize, ready_sources: usize) -> Result<(), SimError> {
        // A dispatch ends any open admission-deferral window (the view
        // loop normally closes it when the gate clears; this is the
        // backstop so the accounting can never leak across commands).
        if let Some(since) = self.admission_deferred_since[queue].take() {
            let now = self.ssd.now_ns();
            self.admission_wait_ns[queue] += now.saturating_sub(since);
            if self.ssd.trace_enabled() {
                self.ssd.tracer_mut().control_instant(
                    "admission_resume",
                    now,
                    vec![
                        ("queue", ArgValue::U64(queue as u64)),
                        ("waited_ns", ArgValue::U64(now.saturating_sub(since))),
                    ],
                );
            }
        }
        let head = self.queues[queue]
            .pending
            .front()
            .expect("picked queue is non-empty")
            .1
            .command;
        if self.ssd.gc_mode() == GcMode::Background && head.consumes_blocks() {
            self.enforce_hard_floor()?;
        }
        let now = self.ssd.now_ns();
        let free = self.queue_depth - self.inflight.len();
        let mut burst = (free / ready_sources.max(1)).max(1);
        // A best-effort read burst must not overshoot the class's slot
        // cap (the head itself was admitted, so at least one slot is
        // its to take).
        if self
            .qos
            .as_ref()
            .is_some_and(|qos| qos.class(queue) == SloClass::BestEffort)
        {
            burst = burst
                .min(self.be_slot_cap.saturating_sub(self.be_inflight.len()))
                .max(1);
        }
        match head {
            Command::Read { .. } => {
                // Batch the queue's leading run of already-arrived
                // reads so the scheme amortises the group traversal.
                let mut batch: Vec<(u64, IoRequest)> = Vec::new();
                while batch.len() < burst {
                    match self.queues[queue].pending.front() {
                        Some(&(_, req))
                            if matches!(req.command, Command::Read { .. })
                                && req.arrival_ns <= now =>
                        {
                            batch.push(self.queues[queue].pending.pop_front().expect("non-empty"));
                        }
                        Some(_) | None => break,
                    }
                }
                self.consume_budget(batch.len() as u64);
                let lpas: Vec<Lpa> = batch
                    .iter()
                    .map(|&(_, req)| req.command.lpa().expect("read has an lpa"))
                    .collect();
                let outcomes = self.ssd.service_read_batch(&lpas)?;
                for ((id, req), (data, complete_ns)) in batch.into_iter().zip(outcomes) {
                    self.finish(id, queue, req, data, now, complete_ns);
                }
            }
            Command::Write { lpa, content } => {
                let (id, req) = self.queues[queue].pending.pop_front().expect("non-empty");
                self.consume_budget(1);
                let complete_ns = self.ssd.service_write(lpa, content)?;
                self.finish(id, queue, req, None, now, complete_ns);
            }
            Command::Flush => {
                let (id, req) = self.queues[queue].pending.pop_front().expect("non-empty");
                self.consume_budget(1);
                let complete_ns = self.ssd.service_flush()?;
                self.finish(id, queue, req, None, now, complete_ns);
            }
            Command::GcMigrate { .. } | Command::Compact { .. } | Command::MapLog { .. } => {
                unreachable!("rejected at submit")
            }
        }
        Ok(())
    }

    fn finish(
        &mut self,
        id: u64,
        queue: usize,
        req: IoRequest,
        data: Option<u64>,
        dispatch_ns: u64,
        complete_ns: u64,
    ) {
        self.inflight.push(Reverse(complete_ns));
        // Dispatch happens at max(arrival, scheduler turn), so
        // dispatch_ns >= arrival_ns always holds here.
        debug_assert!(dispatch_ns >= req.arrival_ns);
        let gc_overlap = dispatch_ns < self.gc_busy_until;
        if let Some(qos) = self.qos.as_mut() {
            // The controller sees what the tenant sees: arrival to
            // completion, including queueing and admission deferral.
            qos.observe(
                queue,
                complete_ns.saturating_sub(req.arrival_ns),
                gc_overlap,
            );
            if qos.class(queue) == SloClass::BestEffort {
                self.be_inflight.push(Reverse(complete_ns));
            }
        }
        if self.ssd.trace_enabled() {
            let name = match req.command {
                Command::Read { .. } => "read",
                Command::Write { .. } => "write",
                Command::Flush => "flush",
                // Background commands never reach a host queue (rejected
                // at submit), but a track name keeps the span valid if
                // that ever changes.
                Command::GcMigrate { .. } | Command::Compact { .. } | Command::MapLog { .. } => {
                    "host"
                }
            };
            let tracer = self.ssd.tracer_mut();
            if dispatch_ns > req.arrival_ns {
                tracer.queue_span(
                    queue as u32,
                    "wait",
                    req.arrival_ns,
                    dispatch_ns,
                    Vec::new(),
                );
            }
            tracer.queue_span(
                queue as u32,
                name,
                dispatch_ns,
                complete_ns,
                vec![
                    ("stream", ArgValue::U64(req.stream as u64)),
                    ("gc_overlap", ArgValue::U64(gc_overlap as u64)),
                ],
            );
        }
        self.completed.push(IoCompletion {
            id,
            queue: queue as u32,
            stream: req.stream,
            command: req.command,
            data,
            arrival_ns: req.arrival_ns,
            dispatch_ns,
            complete_ns,
            gc_overlap,
        });
    }
}

impl<S: MappingScheme + Clone> Drop for Device<'_, S> {
    fn drop(&mut self) {
        // The borrowed SSD outlives the device; hand it back with the
        // blocking-path contract (synchronous GC, inline compaction)
        // intact.
        self.ssd.set_gc_mode(GcMode::Synchronous);
        self.ssd.set_compaction_mode(CompactionMode::Inline);
        // Dropping undrained host commands silently discards work the
        // caller submitted — a bug in the caller. Internal GC/compact
        // backlog is regenerable and exempt; so are devices whose last
        // dispatch already surfaced an error, and drops during a panic
        // unwind.
        debug_assert!(
            self.poisoned || std::thread::panicking() || self.pending_total() == 0,
            "Device dropped with {} pending host commands — call drain() first",
            self.pending_total()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{HostPriority, Weighted};
    use crate::config::SsdConfig;
    use crate::mapping::ExactPageMap;
    use leaftl_flash::Lpa;

    fn ssd() -> Ssd<ExactPageMap> {
        Ssd::new(SsdConfig::small_test(), ExactPageMap::new())
    }

    #[test]
    fn qd1_matches_blocking_path_exactly() {
        let mut blocking = ssd();
        for i in 0..96u64 {
            blocking.write(Lpa::new(i), i).unwrap();
        }
        for i in 0..96u64 {
            assert_eq!(blocking.read(Lpa::new(i)).unwrap(), Some(i));
        }
        let blocking_ns = blocking.now_ns();

        let mut queued = ssd();
        {
            let mut device = Device::new(&mut queued, DeviceConfig::single(1));
            for i in 0..96u64 {
                device.submit_write(Lpa::new(i), i).unwrap();
            }
            for i in 0..96u64 {
                device.submit_read(Lpa::new(i)).unwrap();
            }
            let completions = device.drain().unwrap();
            assert_eq!(completions.len(), 192);
        }
        assert_eq!(queued.now_ns(), blocking_ns);
        assert_eq!(queued.stats().flash, blocking.stats().flash);
    }

    /// A config whose data cache is tiny, so reads actually hit flash.
    fn flashy_ssd() -> Ssd<ExactPageMap> {
        let mut config = SsdConfig::small_test();
        config.dram_bytes = 64 * 1024;
        Ssd::new(config, ExactPageMap::new())
    }

    #[test]
    fn deeper_queues_overlap_reads() {
        // Prefill flash-resident pages spread over many dies; the tiny
        // data cache cannot hold them, so the spread below misses DRAM.
        let mut shallow = flashy_ssd();
        for i in 0..256u64 {
            shallow.write(Lpa::new(i), i).unwrap();
        }
        shallow.flush().unwrap();
        let mut deep = shallow.clone();
        let spread: Vec<u64> = (0..64u64).map(|i| i * 4).collect();

        let t0 = shallow.now_ns();
        {
            let mut device = Device::new(&mut shallow, DeviceConfig::single(1));
            for &i in &spread {
                device.submit_read(Lpa::new(i)).unwrap();
            }
            device.drain().unwrap();
        }
        let serial_ns = shallow.now_ns() - t0;

        let t0 = deep.now_ns();
        {
            let mut device = Device::new(&mut deep, DeviceConfig::single(16));
            for &i in &spread {
                device.submit_read(Lpa::new(i)).unwrap();
            }
            device.drain().unwrap();
        }
        let overlapped_ns = deep.now_ns() - t0;
        assert!(
            overlapped_ns * 2 < serial_ns,
            "QD=16 ({overlapped_ns} ns) must beat QD=1 ({serial_ns} ns) by 2x+"
        );
        // Same work happened either way.
        assert_eq!(deep.stats().flash, shallow.stats().flash);
    }

    #[test]
    fn completions_can_retire_out_of_order() {
        let mut device_ssd = flashy_ssd();
        for i in 0..256u64 {
            device_ssd.write(Lpa::new(i), i).unwrap();
        }
        device_ssd.flush().unwrap();
        // Park a few pages in the write buffer: DRAM-fast reads.
        for i in 0..7u64 {
            device_ssd.write(Lpa::new(200 + i), 999).unwrap();
        }
        let mut device = Device::new(&mut device_ssd, DeviceConfig::single(8));
        // A flash miss (slow) submitted before the buffer hits (fast).
        device.submit_read(Lpa::new(132)).unwrap();
        for i in 0..7u64 {
            device.submit_read(Lpa::new(200 + i)).unwrap();
        }
        let completions = device.drain().unwrap();
        assert_eq!(completions.len(), 8);
        assert!(
            completions
                .windows(2)
                .all(|w| w[0].complete_ns <= w[1].complete_ns),
            "completions sorted by completion time"
        );
        // The first-submitted request (flash read) retires last.
        assert_eq!(completions.last().unwrap().id, 0);
        assert!(completions[0].id > 0);
    }

    #[test]
    fn arrival_timestamps_gate_dispatch() {
        let mut device_ssd = ssd();
        let mut device = Device::new(&mut device_ssd, DeviceConfig::single(4));
        device
            .submit_to(0, IoRequest::write(Lpa::new(1), 10).at(5_000_000))
            .unwrap();
        let completions = device.drain().unwrap();
        assert_eq!(completions[0].dispatch_ns, 5_000_000);
        assert!(completions[0].complete_ns >= 5_000_000);
    }

    #[test]
    fn out_of_order_arrivals_clamp_up_per_queue() {
        let mut device_ssd = ssd();
        let mut device = Device::new(&mut device_ssd, DeviceConfig::single(4));
        device
            .submit_to(0, IoRequest::write(Lpa::new(1), 10).at(5_000_000))
            .unwrap();
        // Submitted later but stamped earlier: FIFO order wins and the
        // timestamp is clamped up to the preceding arrival.
        device
            .submit_to(0, IoRequest::write(Lpa::new(2), 20).at(1_000_000))
            .unwrap();
        let mut completions = device.drain().unwrap();
        completions.sort_by_key(|c| c.id);
        assert_eq!(completions[0].arrival_ns, 5_000_000);
        assert_eq!(completions[1].arrival_ns, 5_000_000);
        assert!(completions[1].dispatch_ns >= completions[1].arrival_ns);
    }

    #[test]
    fn out_of_range_and_unknown_queue_rejected_at_submit() {
        let mut device_ssd = ssd();
        let beyond = Lpa::new(device_ssd.config().logical_pages());
        let mut device = Device::new(&mut device_ssd, DeviceConfig::new(2, 4));
        assert_eq!(
            device.submit_read(beyond),
            Err(SimError::LpaOutOfRange(beyond))
        );
        assert_eq!(
            device.submit_to(2, IoRequest::read(Lpa::new(0))),
            Err(SimError::UnknownQueue(2))
        );
        assert!(device.drain().unwrap().is_empty());
    }

    #[test]
    fn flush_command_drains_the_buffer() {
        let mut device_ssd = ssd();
        let mut device = Device::new(&mut device_ssd, DeviceConfig::single(4));
        for i in 0..5u64 {
            device.submit_write(Lpa::new(i), i + 1).unwrap();
        }
        device.submit_to(0, IoRequest::flush()).unwrap();
        let completions = device.drain().unwrap();
        assert_eq!(completions.len(), 6);
        drop(device);
        // The buffer was forced out: programs hit flash despite the
        // buffer holding fewer pages than a full flush batch.
        assert_eq!(device_ssd.stats().flash.data_programs, 5);
    }

    #[test]
    fn round_robin_interleaves_two_tenant_queues() {
        let mut device_ssd = flashy_ssd();
        for i in 0..512u64 {
            device_ssd.write(Lpa::new(i), i).unwrap();
        }
        device_ssd.flush().unwrap();
        let mut device = Device::new(&mut device_ssd, DeviceConfig::new(2, 2));
        for i in 0..8u64 {
            device
                .submit_to(0, IoRequest::read(Lpa::new(i * 4)).on_stream(0))
                .unwrap();
            device
                .submit_to(1, IoRequest::read(Lpa::new(256 + i * 4)).on_stream(1))
                .unwrap();
        }
        let completions = device.drain().unwrap();
        assert_eq!(completions.len(), 16);
        // Round-robin alternates queues: dispatch order (id order is
        // submission order; dispatch_ns is nondecreasing per queue)
        // serves both tenants rather than finishing one first.
        let first_half: Vec<u32> = {
            let mut by_dispatch = completions.clone();
            by_dispatch.sort_by_key(|c| (c.dispatch_ns, c.id));
            by_dispatch.iter().take(8).map(|c| c.queue).collect()
        };
        assert!(first_half.contains(&0) && first_half.contains(&1));
    }

    /// A small, heavily over-written device that forces GC.
    fn gc_pressured() -> Ssd<ExactPageMap> {
        let mut config = SsdConfig::small_test();
        config.op_ratio = 0.5;
        config.gc_low_watermark = 0.30;
        config.gc_high_watermark = 0.40;
        config.gc_hard_floor = 0.10;
        Ssd::new(config, ExactPageMap::new())
    }

    #[test]
    fn background_gc_collects_and_preserves_data() {
        let mut device_ssd = gc_pressured();
        let logical = device_ssd.config().logical_pages();
        {
            let mut device = Device::new(
                &mut device_ssd,
                DeviceConfig::single(8)
                    .background_gc()
                    .with_arbiter(Box::new(HostPriority::new())),
            );
            for round in 0..6u64 {
                for i in 0..logical {
                    device
                        .submit_write(Lpa::new(i), round * 10_000 + i)
                        .unwrap();
                }
            }
            let completions = device.drain().unwrap();
            assert!(device.gc_dispatched() > 0, "background GC must have run");
            // Migrations surface as GcMigrate completions on the
            // internal queue, one per dispatch.
            let migrations = completions
                .iter()
                .filter(|c| c.kind() == crate::request::IoKind::GcMigrate)
                .collect::<Vec<_>>();
            assert_eq!(migrations.len() as u64, device.gc_dispatched());
            assert!(migrations.iter().all(|c| c.queue == GC_QUEUE));
        }
        assert_eq!(device_ssd.gc_mode(), GcMode::Synchronous, "mode restored");
        assert!(device_ssd.stats().gc_runs > 0);
        for i in (0..logical).step_by(13) {
            assert_eq!(
                device_ssd.read(Lpa::new(i)).unwrap(),
                Some(5 * 10_000 + i),
                "lpa {i}"
            );
        }
    }

    #[test]
    fn background_gc_mode_skips_watermark_gc_in_flush_path() {
        // Same workload, synchronous vs background: the synchronous run
        // collects inside the flush, the background run only when the
        // device dispatches migrations — both end with the same live
        // data.
        let mut sync_ssd = gc_pressured();
        let logical = sync_ssd.config().logical_pages();
        for round in 0..6u64 {
            for i in 0..logical {
                sync_ssd.write(Lpa::new(i), round * 10_000 + i).unwrap();
            }
        }
        assert!(sync_ssd.stats().gc_runs > 0);

        let mut bg_ssd = gc_pressured();
        {
            let mut device = Device::new(&mut bg_ssd, DeviceConfig::single(1).background_gc());
            for round in 0..6u64 {
                for i in 0..logical {
                    device
                        .submit_write(Lpa::new(i), round * 10_000 + i)
                        .unwrap();
                }
            }
            device.drain().unwrap();
        }
        for i in 0..logical {
            assert_eq!(
                bg_ssd.read(Lpa::new(i)).unwrap(),
                sync_ssd.read(Lpa::new(i)).unwrap(),
                "lpa {i}"
            );
        }
    }

    #[test]
    fn hard_floor_back_pressure_stalls_writes() {
        // Floor at the low watermark and a deep queue: host-priority
        // starves GC through each long write backlog, so the settled
        // free fraction (erases actually landed) dips to the floor and
        // writes must stall on in-flight erases.
        let mut config = SsdConfig::small_test();
        config.op_ratio = 0.5;
        config.gc_low_watermark = 0.08;
        config.gc_high_watermark = 0.12;
        config.gc_hard_floor = 0.08;
        let mut device_ssd = Ssd::new(config, ExactPageMap::new());
        let logical = device_ssd.config().logical_pages();
        let mut device = Device::new(
            &mut device_ssd,
            DeviceConfig::single(128)
                .background_gc()
                .with_arbiter(Box::new(HostPriority::new())),
        );
        for round in 0..8u64 {
            for i in 0..logical {
                device.submit_write(Lpa::new(i), round * 7 + i).unwrap();
            }
        }
        device.drain().unwrap();
        assert!(
            device.gc_stall_ns() > 0,
            "a write-saturated device must eventually hit the floor"
        );
    }

    #[test]
    fn background_compaction_dispatches_and_preserves_data() {
        use crate::leaftl_scheme::LeaFtlScheme;
        use crate::request::IoKind;
        use leaftl_core::LeaFtlConfig;

        let mut config = SsdConfig::small_test();
        config.gamma = 0;
        // Huge inline interval: any compaction observed below must have
        // come from the background scheduler, not the flush path.
        let mut device_ssd = Ssd::new(
            config,
            LeaFtlScheme::new(LeaFtlConfig::default().with_compaction_interval(u64::MAX)),
        );
        let logical = device_ssd.config().logical_pages();
        {
            let mut device = Device::new(
                &mut device_ssd,
                DeviceConfig::single(8)
                    .background_compaction()
                    // Segment-driven trigger: the sliding window grows
                    // the segment population by ~3 per round (γ=0
                    // stride-1 trims keep levels flat), so the sweep
                    // fires several times across the run.
                    .with_compaction_thresholds(u32::MAX, 24),
            );
            // A sliding window of *partially* overlapping writes: each
            // round shadows only part of the previous round's segments,
            // so trimmed victims get pushed down and the log-structured
            // levels stack past the threshold again and again. (Full
            // overwrites would shadow whole segments away and never
            // deepen the stack.)
            for round in 0..10u64 {
                for i in 0..256u64 {
                    let lpa = (round * 96 + i) % logical;
                    device
                        .submit_write(Lpa::new(lpa), round * 1_000 + i)
                        .unwrap();
                }
            }
            let completions = device.drain().unwrap();
            assert!(
                device.compact_dispatched() > 0,
                "background compaction must have run"
            );
            let compacts: Vec<_> = completions
                .iter()
                .filter(|c| c.kind() == IoKind::Compact)
                .collect();
            assert_eq!(compacts.len() as u64, device.compact_dispatched());
            assert!(compacts.iter().all(|c| c.queue == COMPACT_QUEUE));
            // The sweep costs CPU time on the timeline, never free.
            assert!(compacts.iter().all(|c| c.complete_ns > c.dispatch_ns));
        }
        assert_eq!(
            device_ssd.compaction_mode(),
            CompactionMode::Inline,
            "mode restored on drop"
        );
        assert!(device_ssd.stats().compactions > 0);
        // Last round's window must read back exactly.
        for i in (0..256u64).step_by(7) {
            let lpa = (9 * 96 + i) % logical;
            assert_eq!(
                device_ssd.read(Lpa::new(lpa)).unwrap(),
                Some(9 * 1_000 + i),
                "lpa {lpa}"
            );
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "pending host commands")]
    fn dropping_undrained_device_asserts_in_debug() {
        let mut device_ssd = ssd();
        let mut device = Device::new(&mut device_ssd, DeviceConfig::single(8));
        device.submit_write(Lpa::new(0), 1).unwrap();
        drop(device);
    }

    #[test]
    fn qos_admission_defers_best_effort_near_the_floor() {
        use crate::qos::{QosSpec, Slo};
        // Floor at the low watermark and a deep queue, as in the
        // hard-floor stall test — but with a QoS controller: the
        // best-effort flood gets deferred at the admission gate while
        // the guaranteed tenant's queue never is.
        let mut config = SsdConfig::small_test();
        config.op_ratio = 0.5;
        config.gc_low_watermark = 0.08;
        config.gc_high_watermark = 0.12;
        config.gc_hard_floor = 0.08;
        let mut device_ssd = Ssd::new(config, ExactPageMap::new());
        let logical = device_ssd.config().logical_pages();
        let mut device = Device::new(
            &mut device_ssd,
            DeviceConfig::new(2, 128)
                .background_gc()
                .with_arbiter(Box::new(Weighted::new(vec![8, 8], 1)))
                .with_qos(QosSpec::new(vec![
                    Slo::guaranteed(1e9), // generous: class is what matters here
                    Slo::best_effort(),
                ])),
        );
        for round in 0..8u64 {
            for i in 0..logical {
                device
                    .submit_to(1, IoRequest::write(Lpa::new(i), round * 7 + i).on_stream(1))
                    .unwrap();
                if i % 64 == 0 {
                    device
                        .submit_to(0, IoRequest::write(Lpa::new(i), round).on_stream(0))
                        .unwrap();
                }
            }
        }
        device.drain().unwrap();
        assert!(
            device.admission_wait_ns() > 0,
            "a write-saturated best-effort tenant must hit the admission gate"
        );
        assert_eq!(
            device.admission_wait_per_queue()[0],
            0,
            "guaranteed tenants are never admission-deferred"
        );
        assert_eq!(
            device.admission_wait_per_queue()[1],
            device.admission_wait_ns()
        );
        assert!(!device.qos_ticks().is_empty(), "control ticks must run");
    }

    #[test]
    fn qos_slot_reserve_caps_best_effort_inflight() {
        use crate::qos::{QosControllerConfig, QosSpec, Slo};
        // Depth 8 with the whole depth reserved for guaranteed slots:
        // the best-effort cap floors at one, so a best-effort flood is
        // serialised — observable through the public in-flight count,
        // since nothing else is dispatching. The flood must be *reads*:
        // buffered writes complete synchronously (the clock advances
        // inside the service call), so their deferral windows open and
        // close at the same instant and accrue no wait.
        let mut device_ssd = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
        let logical = device_ssd.config().logical_pages();
        let mut device = Device::new(
            &mut device_ssd,
            DeviceConfig::new(1, 8).background_gc().with_qos(
                QosSpec::new(vec![Slo::best_effort()]).with_controller(QosControllerConfig {
                    guaranteed_slot_reserve: 8,
                    ..QosControllerConfig::default()
                }),
            ),
        );
        for i in 0..logical {
            device.submit_write(Lpa::new(i), i).unwrap();
        }
        device.drain().unwrap();
        // First read of each page is a flash miss with a completion
        // deadline in the future, so the second head of every pumped
        // batch waits for the lone best-effort slot to free.
        for i in 0..logical {
            device.submit_read(Lpa::new(i)).unwrap();
            assert!(
                device.in_flight() <= 1,
                "best-effort in-flight must stay at the one-slot cap"
            );
        }
        device.drain().unwrap();
        assert!(
            device.admission_wait_ns() > 0,
            "a capped best-effort read flood accrues admission wait"
        );
    }

    #[test]
    fn qos_disabled_device_reports_no_admission_wait_or_ticks() {
        let mut device_ssd = gc_pressured();
        let logical = device_ssd.config().logical_pages();
        let mut device = Device::new(&mut device_ssd, DeviceConfig::new(2, 16).background_gc());
        for round in 0..4u64 {
            for i in 0..logical {
                device.submit_write(Lpa::new(i), round + i).unwrap();
            }
        }
        device.drain().unwrap();
        assert_eq!(device.admission_wait_ns(), 0);
        assert!(device.qos_ticks().is_empty());
    }

    #[test]
    fn weighted_arbitration_biases_queue_service() {
        let mut device_ssd = flashy_ssd();
        for i in 0..512u64 {
            device_ssd.write(Lpa::new(i), i).unwrap();
        }
        device_ssd.flush().unwrap();
        let mut device = Device::new(
            &mut device_ssd,
            // Submission-side depth high enough that both queues fill
            // before any dispatch happens.
            DeviceConfig::new(2, 64).with_arbiter(Box::new(Weighted::new(vec![3, 1], 1))),
        );
        for i in 0..12u64 {
            device
                .submit_to(0, IoRequest::read(Lpa::new(i * 8)).on_stream(0))
                .unwrap();
            device
                .submit_to(1, IoRequest::read(Lpa::new(256 + i * 8)).on_stream(1))
                .unwrap();
        }
        // Serve one command at a time so dispatch times expose the
        // arbiter's pick order (in-module test: tighten the depth).
        device.queue_depth = 1;
        let completions = device.drain().unwrap();
        let mut by_dispatch = completions;
        by_dispatch.sort_by_key(|c| (c.dispatch_ns, c.id));
        // In the first 8 dispatches the 3:1 queue gets ~3x the turns.
        let head_q0 = by_dispatch.iter().take(8).filter(|c| c.queue == 0).count();
        assert!(
            head_q0 >= 5,
            "weighted queue got only {head_q0}/8 early turns"
        );
    }
}
