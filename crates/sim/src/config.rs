//! Simulator configuration.

use leaftl_flash::{FlashGeometry, NandTiming};
use serde::{Deserialize, Serialize};

/// How the SSD DRAM is split between mapping structures and the data
/// cache (the two experimental settings of Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DramPolicy {
    /// The mapping side may take as much DRAM as it wants; the data
    /// cache gets the leftovers (Fig. 16a).
    MappingFirst,
    /// The data cache is guaranteed at least this fraction of DRAM; the
    /// mapping budget is capped at the complement (Fig. 16b uses 0.2).
    DataFloor(f64),
}

/// Garbage-collection victim-selection policy (§3.6 uses greedy; the
/// cost-benefit alternative weighs block age against utilisation and
/// is provided for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Pick the closed block with the fewest valid pages (the paper's
    /// choice, minimising migration work).
    Greedy,
    /// Pick the block maximising `age · (1 − u) / (1 + u)` where `u` is
    /// the valid-page fraction (Rosenblum & Ousterhout's LFS heuristic):
    /// prefers old, mostly-stale blocks even over slightly fuller ones.
    CostBenefit,
}

/// When garbage collection runs relative to the host write path.
///
/// Historically GC ran synchronously inside the buffer flush, stalling
/// the submitting write for entire migrate+erase passes. The
/// multi-queue [`crate::Device`] can instead defer the work: victims
/// are still selected at the low watermark, but their migration is
/// emitted as background commands that compete for dies through the
/// device's arbiter, and host writes block only when free blocks fall
/// to [`SsdConfig::gc_hard_floor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcMode {
    /// Collect inside the flush path until the high watermark is
    /// restored (the legacy blocking behaviour; the default).
    Synchronous,
    /// Only select victims at the watermark; migration runs as
    /// background device traffic ([`crate::Command::GcMigrate`]).
    Background,
}

/// When learned-table compaction runs relative to the host write path.
///
/// Historically compaction was an inline side effect of the buffer
/// flush ([`crate::MappingScheme::maintain`] every
/// [`SsdConfig::compaction_interval_writes`] host writes), so its CPU
/// cost was invisible on the timeline. The multi-queue
/// [`crate::Device`] can instead promote it to first-class background
/// traffic: a compaction scheduler polls per-shard structural pressure
/// ([`crate::MappingScheme::shard_pressure`]) and emits
/// [`crate::Command::Compact`] commands that the arbiter schedules
/// against host queues, charging the compaction sweep on the shard's
/// translation-CPU timeline where concurrent lookups must wait for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompactionMode {
    /// Compact inside the flush path on the write interval (the legacy
    /// behaviour; the default).
    Inline,
    /// Skip inline maintenance; the device emits per-shard
    /// [`crate::Command::Compact`] background commands when a shard's
    /// level depth or segment count crosses its threshold.
    Background,
}

/// How (and whether) the translation state is checkpointed for crash
/// recovery.
///
/// Historically the simulator kept a free-magic in-DRAM clone of the
/// mapping state ([`crate::Ssd::take_snapshot`]) refreshed inside the
/// flush/GC paths — never scheduled as device traffic, and recovery
/// still scanned every block programmed since the snapshot. Following
/// the flash-resident page-map direction (Dayan & Bonnet), the mapping
/// can instead be a log-structured flash citizen: checkpoints and
/// per-flush deltas are programmed into dedicated translation-log
/// blocks ([`crate::Command::MapLog`]), charged on die timelines like
/// any other program, and recovery replays the durable log tail plus
/// only the post-checkpoint data blocks — O(dirty), not O(device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointMode {
    /// Free in-DRAM snapshot refreshed after GC passes (the legacy
    /// behaviour; the default).
    DramSnapshot,
    /// Flash-resident translation log: checkpoints and flush deltas
    /// are appended to dedicated log blocks as background device
    /// traffic with their own retention/GC policy.
    FlashLog,
    /// No checkpointing: recovery falls back to the full
    /// O(device) out-of-band scan.
    Disabled,
}

/// Full configuration of a simulated SSD.
///
/// Defaults mirror Table 1 of the paper: 2 TB capacity, 16 channels,
/// 4 KB pages, 256 pages/block, 128 B OOB, 1 GB DRAM, 20 %
/// over-provisioning, 20 µs read / 200 µs program / 1.5 ms erase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// NAND array geometry.
    pub geometry: FlashGeometry,
    /// NAND operation latencies.
    pub timing: NandTiming,
    /// Total controller DRAM in bytes.
    pub dram_bytes: usize,
    /// Over-provisioning ratio: the host-visible capacity is
    /// `(1 − op_ratio)` of the raw capacity.
    pub op_ratio: f64,
    /// DRAM split policy between mapping structures and data cache.
    pub dram_policy: DramPolicy,
    /// Write data buffer capacity in pages (paper §3.3 default: 8 MB).
    /// The buffer is dedicated controller memory, *not* part of
    /// [`SsdConfig::dram_bytes`] (which funds the mapping structures
    /// and the read data cache).
    pub write_buffer_pages: usize,
    /// Preferred flush stripe chunk in pages. Block-sized chunks (the
    /// paper's flush granularity) maximise learned-segment length;
    /// smaller chunks spread small buffers over more channels.
    pub stripe_pages: u32,
    /// GC victim-selection policy.
    pub gc_policy: GcPolicy,
    /// GC starts when the free-block fraction drops below this.
    pub gc_low_watermark: f64,
    /// GC keeps collecting until the free-block fraction reaches this.
    pub gc_high_watermark: f64,
    /// Hard free-block floor for background GC ([`GcMode::Background`]):
    /// host writes are back-pressured (stalled behind in-flight
    /// migration erases) only when the settled free fraction falls to
    /// this floor. `0.0` disables write back-pressure entirely — the
    /// synchronous allocation-failure fallback still guards
    /// correctness. The device clamps the floor to
    /// [`SsdConfig::gc_low_watermark`], so configs that only lower the
    /// watermarks keep working. Unused in [`GcMode::Synchronous`].
    pub gc_hard_floor: f64,
    /// Wear levelling triggers when `max − min` block erase counts
    /// exceed this gap.
    pub wear_gap_threshold: u32,
    /// Error bound γ for LeaFTL's approximate segments.
    pub gamma: u32,
    /// Host writes between learned-table compactions (paper §3.7
    /// default: one million). Experiments scale it with the device so
    /// the steady-state behaviour matches the paper's.
    pub compaction_interval_writes: u64,
    /// Whether the write buffer is sorted by LPA before flushing
    /// (§3.3). Disabling it is the Fig. 7 ablation.
    pub sort_buffer_on_flush: bool,
    /// CPU cost charged per mapping-table lookup, in nanoseconds
    /// (Table 3 measures 40.2–67.5 ns on a Cortex-A72).
    pub lookup_base_ns: u64,
    /// Additional lookup cost per extra level visited.
    pub lookup_per_level_ns: u64,
    /// CPU cost charged for learning one batch of up to 256 mappings
    /// (Table 3 measures 9.8–10.8 µs).
    pub learn_batch_ns: u64,
    /// How translation state is checkpointed for crash recovery.
    pub checkpoint_mode: CheckpointMode,
}

impl SsdConfig {
    /// Table 1 configuration (2 TB). Use [`SsdConfig::scaled`] for
    /// simulations that must fit in host memory.
    pub fn paper_default() -> Self {
        SsdConfig {
            geometry: FlashGeometry::paper_default(),
            timing: NandTiming::paper_default(),
            dram_bytes: 1024 * 1024 * 1024,
            op_ratio: 0.2,
            dram_policy: DramPolicy::MappingFirst,
            write_buffer_pages: 2048, // 8 MB of 4 KB pages
            stripe_pages: 256,        // one block per chunk, as in §3.3
            gc_policy: GcPolicy::Greedy,
            gc_low_watermark: 0.08,
            gc_high_watermark: 0.12,
            gc_hard_floor: 0.02,
            wear_gap_threshold: 16,
            gamma: 0,
            compaction_interval_writes: 1_000_000,
            sort_buffer_on_flush: true,
            lookup_base_ns: 40,
            lookup_per_level_ns: 10,
            learn_batch_ns: 10_000,
            checkpoint_mode: CheckpointMode::DramSnapshot,
        }
    }

    /// A proportionally scaled-down SSD: same channel count, page and
    /// block sizes, with `capacity_bytes` of flash and DRAM scaled by
    /// the same factor relative to Table 1 (1 GB per 2 TB).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is not a positive multiple of the
    /// block size.
    pub fn scaled(capacity_bytes: u64) -> Self {
        let mut config = SsdConfig::paper_default();
        config.geometry = FlashGeometry::with_capacity(capacity_bytes);
        let scale = capacity_bytes as f64 / (2.0 * 1024.0 * 1024.0 * 1024.0 * 1024.0);
        config.dram_bytes = ((1024.0 * 1024.0 * 1024.0) * scale) as usize;
        config
    }

    /// A small configuration for unit and integration tests: 4 channels,
    /// 64 blocks × 32 pages, tiny write buffer, generous DRAM.
    pub fn small_test() -> Self {
        let mut config = SsdConfig::paper_default();
        config.geometry = FlashGeometry::small_test();
        config.dram_bytes = 4 * 1024 * 1024;
        config.write_buffer_pages = 32; // one block
        config.gc_low_watermark = 0.10;
        config.gc_high_watermark = 0.15;
        config.gc_hard_floor = 0.02;
        config
    }

    /// Host-visible capacity in pages (`(1 − op_ratio)` of raw).
    pub fn logical_pages(&self) -> u64 {
        (self.geometry.total_pages() as f64 * (1.0 - self.op_ratio)) as u64
    }

    /// Host-visible capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_pages() * self.geometry.page_size as u64
    }

    /// Write buffer footprint in bytes (counted against DRAM).
    pub fn write_buffer_bytes(&self) -> usize {
        self.write_buffer_pages * self.geometry.page_size as usize
    }

    /// DRAM available to mapping structures under the configured policy.
    pub fn mapping_budget(&self) -> usize {
        match self.dram_policy {
            DramPolicy::MappingFirst => self.dram_bytes,
            DramPolicy::DataFloor(fraction) => {
                let floor = (self.dram_bytes as f64 * fraction) as usize;
                self.dram_bytes.saturating_sub(floor)
            }
        }
    }

    /// Validates the configuration, panicking with a descriptive message
    /// on nonsensical values. Called by `Ssd::new`.
    pub fn validate(&self) {
        assert!(
            self.op_ratio > 0.0 && self.op_ratio < 0.9,
            "op_ratio out of range"
        );
        assert!(
            self.gc_low_watermark < self.gc_high_watermark,
            "gc watermarks inverted"
        );
        assert!(
            (0.0..1.0).contains(&self.gc_hard_floor),
            "gc hard floor out of range"
        );
        assert!(
            self.gc_high_watermark < self.op_ratio,
            "gc high watermark must stay below the over-provisioned fraction"
        );
        assert!(self.write_buffer_pages >= 1, "write buffer too small");
        assert!(
            self.gamma <= self.geometry.max_gamma(),
            "gamma {} exceeds what the {}-byte OOB can verify (max {})",
            self.gamma,
            self.geometry.oob_size,
            self.geometry.max_gamma()
        );
        if let DramPolicy::DataFloor(f) = self.dram_policy {
            assert!((0.0..1.0).contains(&f), "data floor fraction out of range");
        }
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let c = SsdConfig::paper_default();
        assert_eq!(c.geometry.capacity_bytes(), 2u64 << 40);
        assert_eq!(c.dram_bytes, 1 << 30);
        assert_eq!(c.timing.read_us(), 20.0);
        assert!((c.op_ratio - 0.2).abs() < 1e-9);
        c.validate();
    }

    #[test]
    fn scaled_keeps_dram_ratio() {
        let c = SsdConfig::scaled(16 * 1024 * 1024 * 1024);
        assert_eq!(c.geometry.capacity_bytes(), 16u64 << 30);
        // 1 GB per 2 TB => 8 MB per 16 GB.
        assert_eq!(c.dram_bytes, 8 * 1024 * 1024);
        c.validate();
    }

    #[test]
    fn logical_capacity_respects_op() {
        let c = SsdConfig::small_test();
        let total = c.geometry.total_pages();
        assert_eq!(c.logical_pages(), (total as f64 * 0.8) as u64);
    }

    #[test]
    fn mapping_budget_policies() {
        let mut c = SsdConfig::small_test();
        c.dram_bytes = 1_000_000;
        c.dram_policy = DramPolicy::MappingFirst;
        assert_eq!(c.mapping_budget(), 1_000_000);
        c.dram_policy = DramPolicy::DataFloor(0.2);
        assert_eq!(c.mapping_budget(), 800_000);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn validate_rejects_oversized_gamma() {
        let mut c = SsdConfig::small_test();
        c.gamma = 100;
        c.validate();
    }
}
