//! The queued I/O engine: submission/completion scheduling over an
//! [`Ssd`].
//!
//! The legacy interface replays workloads closed-loop — `Ssd::read`
//! blocks the virtual clock until the request completes, so exactly one
//! host request is ever in flight and die parallelism is exercised only
//! by background flush/GC traffic. This engine models the real
//! host-device contract instead: requests enter a submission queue, up
//! to `queue_depth` of them are outstanding at once, and each completes
//! independently when its per-die operation chain drains. Requests
//! dispatched together overlap on different dies, which is where a
//! 16-channel × 4-die device earns its throughput.
//!
//! # Simulation model
//!
//! The engine processes requests **in submission order** (FIFO
//! dispatch): state changes — buffer/caches, mapping table, flash
//! programs, GC — happen at dispatch time, atomically per request, so
//! the device's final state is *identical at every queue depth* to the
//! legacy blocking replay (the `engine_equivalence` proptest pins this
//! invariant). What queue depth changes is *time*: a request's flash
//! work is chained on per-die timelines from its dispatch point
//! ([`crate::clock::SimClock::schedule_after`]), the global clock only
//! advances when a full queue forces the host to wait for the earliest
//! completion, and completions therefore retire out of order.
//!
//! Consecutive queued reads dispatched in one round share a single
//! mapping-table traversal via [`MappingScheme::lookup_batch`].
//!
//! # Example
//!
//! ```
//! use leaftl_flash::Lpa;
//! use leaftl_sim::{ExactPageMap, IoEngine, IoRequest, Ssd, SsdConfig};
//!
//! # fn main() -> Result<(), leaftl_sim::SimError> {
//! let mut ssd = Ssd::new(SsdConfig::small_test(), ExactPageMap::new());
//! let mut engine = IoEngine::new(&mut ssd, 8);
//! for i in 0..64 {
//!     engine.submit(IoRequest::write(Lpa::new(i), i * 3))?;
//! }
//! for i in 0..64 {
//!     engine.submit(IoRequest::read(Lpa::new(i)))?;
//! }
//! let completions = engine.drain()?;
//! assert_eq!(completions.len(), 128);
//! assert_eq!(completions.iter().filter(|c| c.data.is_some()).count(), 64);
//! # Ok(())
//! # }
//! ```

use crate::error::SimError;
use crate::mapping::MappingScheme;
use crate::request::{IoCompletion, IoKind, IoRequest};
use crate::ssd::Ssd;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Submission/completion queue pair over a borrowed [`Ssd`].
///
/// Dropping the engine with work still queued simply discards the
/// pending requests; call [`IoEngine::drain`] to run everything down.
#[derive(Debug)]
pub struct IoEngine<'a, S: MappingScheme + Clone> {
    ssd: &'a mut Ssd<S>,
    queue_depth: usize,
    next_id: u64,
    /// Submitted but not yet dispatched, FIFO.
    pending: VecDeque<(u64, IoRequest)>,
    /// Completion times of dispatched-but-not-retired requests
    /// (min-heap); its size is the current in-flight count.
    inflight: BinaryHeap<Reverse<u64>>,
    /// Processed requests whose outcome is known, retired to the caller
    /// via [`IoEngine::take_completions`] / [`IoEngine::drain`].
    completed: Vec<IoCompletion>,
    /// Largest arrival timestamp accepted so far: submissions are FIFO,
    /// so a later submission with an earlier timestamp is clamped up to
    /// this floor (see [`IoRequest::arrival_ns`]).
    arrival_floor_ns: u64,
}

impl<'a, S: MappingScheme + Clone> IoEngine<'a, S> {
    /// Wraps an SSD with a submission queue of depth `queue_depth`
    /// (clamped to ≥ 1; depth 1 reproduces the blocking path exactly).
    pub fn new(ssd: &'a mut Ssd<S>, queue_depth: usize) -> Self {
        IoEngine {
            ssd,
            queue_depth: queue_depth.max(1),
            next_id: 0,
            pending: VecDeque::new(),
            inflight: BinaryHeap::new(),
            completed: Vec::new(),
            arrival_floor_ns: 0,
        }
    }

    /// The configured queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Read access to the underlying SSD.
    pub fn ssd(&self) -> &Ssd<S> {
        self.ssd
    }

    /// Requests currently dispatched and not yet retired.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Enqueues a request, returning its engine-assigned id. The doorbell
    /// rings — requests dispatch — once a full queue-depth batch is
    /// pending (or on [`IoEngine::drain`]); deferring dispatch lets a
    /// burst of reads share one mapping-table traversal.
    ///
    /// # Errors
    ///
    /// * [`SimError::LpaOutOfRange`] — rejected at submission, nothing
    ///   is enqueued.
    /// * Flush-path errors (e.g. [`SimError::DeviceFull`]) surface when
    ///   the doorbell batch is processed.
    pub fn submit(&mut self, mut request: IoRequest) -> Result<u64, SimError> {
        if request.lpa.raw() >= self.ssd.config().logical_pages() {
            return Err(SimError::LpaOutOfRange(request.lpa));
        }
        // Submission order is dispatch order: an out-of-order (earlier)
        // timestamp is clamped up to the newest one seen, so latency
        // attribution never counts phantom queueing behind a request
        // that was actually submitted first.
        request.arrival_ns = request.arrival_ns.max(self.arrival_floor_ns);
        self.arrival_floor_ns = request.arrival_ns;
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back((id, request));
        if self.pending.len() >= self.queue_depth {
            self.pump()?;
        }
        Ok(id)
    }

    /// Convenience: submit an ASAP read on stream 0.
    pub fn submit_read(&mut self, lpa: leaftl_flash::Lpa) -> Result<u64, SimError> {
        self.submit(IoRequest::read(lpa))
    }

    /// Convenience: submit an ASAP write on stream 0.
    pub fn submit_write(&mut self, lpa: leaftl_flash::Lpa, content: u64) -> Result<u64, SimError> {
        self.submit(IoRequest::write(lpa, content))
    }

    /// Takes the completions retired so far, ordered by completion
    /// time (ties by submission id).
    pub fn take_completions(&mut self) -> Vec<IoCompletion> {
        let mut done = std::mem::take(&mut self.completed);
        done.sort_by_key(|c| (c.complete_ns, c.id));
        done
    }

    /// Dispatches everything still pending, waits for every in-flight
    /// request (advancing the clock to the last completion), and
    /// returns all unretired completions ordered by completion time.
    pub fn drain(&mut self) -> Result<Vec<IoCompletion>, SimError> {
        self.pump()?;
        while let Some(Reverse(complete_ns)) = self.inflight.pop() {
            self.ssd.advance_to(complete_ns);
        }
        Ok(self.take_completions())
    }

    /// Retires in-flight entries whose completion time has passed.
    fn retire_due(&mut self) {
        let now = self.ssd.now_ns();
        while matches!(self.inflight.peek(), Some(&Reverse(c)) if c <= now) {
            self.inflight.pop();
        }
    }

    /// Dispatches pending requests in FIFO order, respecting arrivals
    /// and the queue depth.
    fn pump(&mut self) -> Result<(), SimError> {
        while !self.pending.is_empty() {
            self.retire_due();
            if self.inflight.len() >= self.queue_depth {
                // Queue full: the host blocks until the earliest
                // in-flight request completes.
                let Reverse(complete_ns) = self.inflight.pop().expect("non-empty");
                self.ssd.advance_to(complete_ns);
                continue;
            }
            // Dispatch no earlier than the request's arrival.
            let arrival = self.pending.front().expect("non-empty").1.arrival_ns;
            self.ssd.advance_to(arrival);
            let now = self.ssd.now_ns();
            let free = self.queue_depth - self.inflight.len();

            if self.pending.front().expect("non-empty").1.kind == IoKind::Read {
                // Batch the leading run of already-arrived reads so the
                // scheme amortises the group traversal across them.
                let mut batch: Vec<(u64, IoRequest)> = Vec::new();
                while batch.len() < free {
                    match self.pending.front() {
                        Some(&(_, req)) if req.kind == IoKind::Read && req.arrival_ns <= now => {
                            batch.push(self.pending.pop_front().expect("non-empty"));
                        }
                        _ => break,
                    }
                }
                let lpas: Vec<_> = batch.iter().map(|&(_, req)| req.lpa).collect();
                let outcomes = self.ssd.service_read_batch(&lpas)?;
                for ((id, req), (data, complete_ns)) in batch.into_iter().zip(outcomes) {
                    self.finish(id, req, data, now, complete_ns);
                }
            } else {
                let (id, req) = self.pending.pop_front().expect("non-empty");
                let complete_ns = self.ssd.service_write(req.lpa, req.content)?;
                self.finish(id, req, None, now, complete_ns);
            }
        }
        Ok(())
    }

    fn finish(
        &mut self,
        id: u64,
        req: IoRequest,
        data: Option<u64>,
        dispatch_ns: u64,
        complete_ns: u64,
    ) {
        self.inflight.push(Reverse(complete_ns));
        // Dispatch happens at max(arrival, slot-free time), so
        // dispatch_ns >= arrival_ns always holds here.
        debug_assert!(dispatch_ns >= req.arrival_ns);
        self.completed.push(IoCompletion {
            id,
            kind: req.kind,
            lpa: req.lpa,
            data,
            stream: req.stream,
            arrival_ns: req.arrival_ns,
            dispatch_ns,
            complete_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use crate::mapping::ExactPageMap;
    use leaftl_flash::Lpa;

    fn ssd() -> Ssd<ExactPageMap> {
        Ssd::new(SsdConfig::small_test(), ExactPageMap::new())
    }

    #[test]
    fn qd1_matches_blocking_path_exactly() {
        let mut blocking = ssd();
        for i in 0..96u64 {
            blocking.write(Lpa::new(i), i).unwrap();
        }
        for i in 0..96u64 {
            assert_eq!(blocking.read(Lpa::new(i)).unwrap(), Some(i));
        }
        let blocking_ns = blocking.now_ns();

        let mut queued = ssd();
        {
            let mut engine = IoEngine::new(&mut queued, 1);
            for i in 0..96u64 {
                engine.submit_write(Lpa::new(i), i).unwrap();
            }
            for i in 0..96u64 {
                engine.submit_read(Lpa::new(i)).unwrap();
            }
            let completions = engine.drain().unwrap();
            assert_eq!(completions.len(), 192);
        }
        assert_eq!(queued.now_ns(), blocking_ns);
        assert_eq!(queued.stats().flash, blocking.stats().flash);
    }

    /// A config whose data cache is tiny, so reads actually hit flash.
    fn flashy_ssd() -> Ssd<ExactPageMap> {
        let mut config = SsdConfig::small_test();
        config.dram_bytes = 64 * 1024;
        Ssd::new(config, ExactPageMap::new())
    }

    #[test]
    fn deeper_queues_overlap_reads() {
        // Prefill flash-resident pages spread over many dies; the tiny
        // data cache cannot hold them, so the spread below misses DRAM.
        let mut shallow = flashy_ssd();
        for i in 0..256u64 {
            shallow.write(Lpa::new(i), i).unwrap();
        }
        shallow.flush().unwrap();
        let mut deep = shallow.clone();
        let spread: Vec<u64> = (0..64u64).map(|i| i * 4).collect();

        let t0 = shallow.now_ns();
        {
            let mut engine = IoEngine::new(&mut shallow, 1);
            for &i in &spread {
                engine.submit_read(Lpa::new(i)).unwrap();
            }
            engine.drain().unwrap();
        }
        let serial_ns = shallow.now_ns() - t0;

        let t0 = deep.now_ns();
        {
            let mut engine = IoEngine::new(&mut deep, 16);
            for &i in &spread {
                engine.submit_read(Lpa::new(i)).unwrap();
            }
            engine.drain().unwrap();
        }
        let overlapped_ns = deep.now_ns() - t0;
        assert!(
            overlapped_ns * 2 < serial_ns,
            "QD=16 ({overlapped_ns} ns) must beat QD=1 ({serial_ns} ns) by 2x+"
        );
        // Same work happened either way.
        assert_eq!(deep.stats().flash, shallow.stats().flash);
    }

    #[test]
    fn completions_can_retire_out_of_order() {
        let mut device = flashy_ssd();
        for i in 0..256u64 {
            device.write(Lpa::new(i), i).unwrap();
        }
        device.flush().unwrap();
        // Park a few pages in the write buffer: DRAM-fast reads.
        for i in 0..7u64 {
            device.write(Lpa::new(200 + i), 999).unwrap();
        }
        let mut engine = IoEngine::new(&mut device, 8);
        // A flash miss (slow) submitted before the buffer hits (fast).
        engine.submit_read(Lpa::new(132)).unwrap();
        for i in 0..7u64 {
            engine.submit_read(Lpa::new(200 + i)).unwrap();
        }
        let completions = engine.drain().unwrap();
        assert_eq!(completions.len(), 8);
        assert!(
            completions
                .windows(2)
                .all(|w| w[0].complete_ns <= w[1].complete_ns),
            "completions sorted by completion time"
        );
        // The first-submitted request (flash read) retires last.
        assert_eq!(completions.last().unwrap().id, 0);
        assert!(completions[0].id > 0);
    }

    #[test]
    fn arrival_timestamps_gate_dispatch() {
        let mut device = ssd();
        let mut engine = IoEngine::new(&mut device, 4);
        engine
            .submit(IoRequest::write(Lpa::new(1), 10).at(5_000_000))
            .unwrap();
        let completions = engine.drain().unwrap();
        assert_eq!(completions[0].dispatch_ns, 5_000_000);
        assert!(completions[0].complete_ns >= 5_000_000);
    }

    #[test]
    fn out_of_order_arrivals_clamp_up() {
        let mut device = ssd();
        let mut engine = IoEngine::new(&mut device, 4);
        engine
            .submit(IoRequest::write(Lpa::new(1), 10).at(5_000_000))
            .unwrap();
        // Submitted later but stamped earlier: FIFO order wins and the
        // timestamp is clamped up to the preceding arrival.
        engine
            .submit(IoRequest::write(Lpa::new(2), 20).at(1_000_000))
            .unwrap();
        let mut completions = engine.drain().unwrap();
        completions.sort_by_key(|c| c.id);
        assert_eq!(completions[0].arrival_ns, 5_000_000);
        assert_eq!(completions[1].arrival_ns, 5_000_000);
        assert!(completions[1].dispatch_ns >= completions[1].arrival_ns);
    }

    #[test]
    fn out_of_range_rejected_at_submit() {
        let mut device = ssd();
        let beyond = Lpa::new(device.config().logical_pages());
        let mut engine = IoEngine::new(&mut device, 4);
        assert_eq!(
            engine.submit_read(beyond),
            Err(SimError::LpaOutOfRange(beyond))
        );
        assert!(engine.drain().unwrap().is_empty());
    }
}
