//! The controller's write data buffer (§3.3 of the paper).
//!
//! Writes accumulate here and are flushed to flash in flash-block-sized
//! chunks. Before a flush the pages are sorted by LPA so that ascending
//! LPAs receive consecutive PPAs — the property that makes mappings
//! learnable. The buffer also absorbs read hits for recently written
//! pages and write coalescing (a rewrite of a buffered page costs no
//! flash traffic at all).

use leaftl_flash::Lpa;
use std::collections::BTreeMap;

/// Write buffer: pending `(LPA → content)` pages awaiting flush.
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    pages: BTreeMap<Lpa, u64>,
    arrival: Vec<Lpa>,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        WriteBuffer::default()
    }

    /// Buffers a page write, coalescing rewrites. Returns `true` when
    /// the LPA was already buffered (coalesced).
    pub fn insert(&mut self, lpa: Lpa, content: u64) -> bool {
        let coalesced = self.pages.insert(lpa, content).is_some();
        if !coalesced {
            self.arrival.push(lpa);
        }
        coalesced
    }

    /// Reads a buffered page (newest data wins over flash).
    pub fn get(&self, lpa: Lpa) -> Option<u64> {
        self.pages.get(&lpa).copied()
    }

    /// Number of buffered pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the buffer holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Drains every page sorted by LPA (the §3.3 optimisation).
    pub fn drain_sorted(&mut self) -> Vec<(Lpa, u64)> {
        self.arrival.clear();
        std::mem::take(&mut self.pages).into_iter().collect()
    }

    /// Drains every page in arrival order (the Fig. 7 "unoptimized"
    /// ablation: no LPA sorting before allocation).
    pub fn drain_unsorted(&mut self) -> Vec<(Lpa, u64)> {
        let pages = std::mem::take(&mut self.pages);
        let order = std::mem::take(&mut self.arrival);
        order
            .into_iter()
            .filter_map(|lpa| pages.get(&lpa).map(|&c| (lpa, c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut buffer = WriteBuffer::new();
        assert!(!buffer.insert(Lpa::new(5), 50));
        assert!(!buffer.insert(Lpa::new(3), 30));
        assert_eq!(buffer.get(Lpa::new(5)), Some(50));
        assert_eq!(buffer.get(Lpa::new(4)), None);
        assert_eq!(buffer.len(), 2);
    }

    #[test]
    fn rewrite_coalesces() {
        let mut buffer = WriteBuffer::new();
        buffer.insert(Lpa::new(5), 50);
        assert!(buffer.insert(Lpa::new(5), 51));
        assert_eq!(buffer.get(Lpa::new(5)), Some(51));
        assert_eq!(buffer.len(), 1);
    }

    #[test]
    fn drain_sorted_orders_by_lpa() {
        let mut buffer = WriteBuffer::new();
        for lpa in [78u64, 32, 33, 76, 115, 34, 38] {
            buffer.insert(Lpa::new(lpa), lpa * 10);
        }
        let drained = buffer.drain_sorted();
        let lpas: Vec<u64> = drained.iter().map(|(l, _)| l.raw()).collect();
        assert_eq!(lpas, vec![32, 33, 34, 38, 76, 78, 115]);
        assert!(buffer.is_empty());
    }

    #[test]
    fn drain_unsorted_preserves_arrival_order() {
        let mut buffer = WriteBuffer::new();
        for lpa in [78u64, 32, 33] {
            buffer.insert(Lpa::new(lpa), lpa);
        }
        buffer.insert(Lpa::new(78), 780); // coalesce keeps first arrival slot
        let drained = buffer.drain_unsorted();
        let lpas: Vec<u64> = drained.iter().map(|(l, _)| l.raw()).collect();
        assert_eq!(lpas, vec![78, 32, 33]);
        assert_eq!(drained[0].1, 780);
    }
}
