//! Simulation statistics: latency distributions, flash-op breakdowns,
//! cache behaviour, misprediction counters, WAF.

use serde::{Deserialize, Serialize};

/// Log-linear latency histogram with exact aggregate moments.
///
/// Each decade between 100 ns and 10⁷ s splits into [`SUB_BUCKETS`]
/// linear sub-buckets, so a reported percentile is tight to within
/// 1/8 of a decade instead of rounding to the decade edge ("p99 =
/// 10000 µs" meaning "somewhere below 10 ms"). Bucket boundaries use
/// pure integer arithmetic, so placement is exact and deterministic.
/// Percentile queries use the bucket upper bound (conservative).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

/// Linear sub-buckets per decade.
const SUB_BUCKETS: usize = 8;
/// Decades covered: [100 ns, 100 ns × 10¹⁴).
const DECADES: usize = 14;
const BUCKETS: usize = DECADES * SUB_BUCKETS;
/// Lower bound of the first decade.
const BASE_NS: u64 = 100;

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns <= BASE_NS {
            return 0;
        }
        let mut lower = BASE_NS;
        let mut decade = 0usize;
        while decade + 1 < DECADES && ns >= lower * 10 {
            lower *= 10;
            decade += 1;
        }
        if ns >= lower * 10 {
            return BUCKETS - 1;
        }
        // Sub-bucket `s` covers lower + 9·lower·[s, s+1)/SUB_BUCKETS.
        let sub = ((ns - lower) * SUB_BUCKETS as u64 / (9 * lower)) as usize;
        decade * SUB_BUCKETS + sub.min(SUB_BUCKETS - 1)
    }

    fn bucket_upper_ns(idx: usize) -> u64 {
        let decade = idx / SUB_BUCKETS;
        let sub = idx % SUB_BUCKETS;
        let lower = BASE_NS * 10u64.pow(decade as u32);
        lower + 9 * lower * (sub as u64 + 1) / SUB_BUCKETS as u64
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Approximate percentile (`p` in `[0, 100]`) in nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper_ns(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// CDF points `(latency_us, cumulative_fraction)` for plotting
    /// (Fig. 18), skipping empty buckets.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut points = Vec::new();
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            points.push((
                Self::bucket_upper_ns(idx) as f64 / 1000.0,
                seen as f64 / self.count as f64,
            ));
        }
        points
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Why flash pages were programmed — used for the WAF breakdown
/// (Fig. 25) and for attributing latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlashOpBreakdown {
    /// Host data pages written to flash.
    pub data_programs: u64,
    /// Pages copied by garbage collection.
    pub gc_programs: u64,
    /// Pages copied by wear levelling.
    pub wear_programs: u64,
    /// Translation/metadata pages written (mapping flushes, snapshots).
    pub translation_programs: u64,
    /// Host data page reads from flash.
    pub data_reads: u64,
    /// Reads issued by GC/wear migrations.
    pub gc_reads: u64,
    /// Translation-page reads (mapping-cache misses).
    pub translation_reads: u64,
    /// Extra reads caused by address mispredictions (§3.5).
    pub misprediction_reads: u64,
    /// Block erases.
    pub erases: u64,
}

impl FlashOpBreakdown {
    /// All programs, regardless of cause.
    pub fn total_programs(&self) -> u64 {
        self.data_programs + self.gc_programs + self.wear_programs + self.translation_programs
    }
}

/// Cumulative simulation statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Host-issued page reads.
    pub host_reads: u64,
    /// Host-issued page writes.
    pub host_writes: u64,
    /// Host reads served without flash access (write buffer).
    pub buffer_hits: u64,
    /// Host reads served without flash access (data cache).
    pub cache_hits: u64,
    /// Host reads of never-written pages.
    pub unmapped_reads: u64,
    /// Mapping lookups that returned an address.
    pub lookups: u64,
    /// Lookups whose first flash read was the wrong page.
    pub mispredictions: u64,
    /// Levels visited per lookup, indexed by `levels − 1` (Fig. 23a).
    pub lookup_level_histogram: Vec<u64>,
    /// Nanoseconds spent in mapping-table CPU work (Fig. 23b).
    pub lookup_cpu_ns: u64,
    /// Nanoseconds lookups spent queued behind a busy translation-shard
    /// CPU (an earlier lookup or an in-flight compaction sweep) before
    /// being granted. The pipelined read path exists to shrink this: a
    /// resident request's sub-µs lookup no longer waits behind an
    /// earlier request's demand-paged translation read for the shard
    /// CPU.
    pub translation_stall_ns: u64,
    /// Nanoseconds spent learning segments (Table 3 / §4.5).
    pub learn_cpu_ns: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// Wear-levelling block swaps.
    pub wear_swaps: u64,
    /// Mapping-table compactions (LeaFTL only).
    pub compactions: u64,
    /// Flash operation breakdown.
    pub flash: FlashOpBreakdown,
    /// Host read latency distribution.
    pub read_latency: LatencyHistogram,
    /// Host write latency distribution.
    pub write_latency: LatencyHistogram,
}

impl SimStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Write amplification factor: total flash programs over host
    /// writes (Fig. 25). Returns 0 when no host writes happened.
    pub fn waf(&self) -> f64 {
        if self.host_writes == 0 {
            return 0.0;
        }
        self.flash.total_programs() as f64 / self.host_writes as f64
    }

    /// Misprediction ratio over all successful lookups (Fig. 24).
    pub fn misprediction_ratio(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.mispredictions as f64 / self.lookups as f64
    }

    /// Read-cache hit ratio over host reads.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.host_reads == 0 {
            return 0.0;
        }
        (self.cache_hits + self.buffer_hits) as f64 / self.host_reads as f64
    }

    /// Records a levels-visited sample.
    pub fn record_lookup_levels(&mut self, levels: u32) {
        let idx = (levels.max(1) - 1) as usize;
        if self.lookup_level_histogram.len() <= idx {
            self.lookup_level_histogram.resize(idx + 1, 0);
        }
        self.lookup_level_histogram[idx] += 1;
    }

    /// Average number of levels visited per lookup.
    pub fn avg_lookup_levels(&self) -> f64 {
        let total: u64 = self.lookup_level_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .lookup_level_histogram
            .iter()
            .enumerate()
            .map(|(idx, &n)| (idx as u64 + 1) * n)
            .sum();
        weighted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_moments() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400] {
            h.record(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean_ns(), 250.0);
        assert_eq!(h.min_ns(), 100);
        assert_eq!(h.max_ns(), 400);
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000);
        }
        let p50 = h.percentile_ns(50.0);
        let p99 = h.percentile_ns(99.0);
        let p999 = h.percentile_ns(99.9);
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p50 >= 400_000 && p50 <= 650_000, "p50 = {p50}");
    }

    #[test]
    fn log_linear_buckets_are_tight_and_ordered() {
        // Upper bounds strictly increase and each sample lands in a
        // bucket whose bound contains it.
        for idx in 1..BUCKETS {
            assert!(
                LatencyHistogram::bucket_upper_ns(idx) > LatencyHistogram::bucket_upper_ns(idx - 1)
            );
        }
        let mut ns = 1u64;
        while ns < 10u64.pow(12) {
            assert!(ns <= LatencyHistogram::bucket_upper_ns(LatencyHistogram::bucket_of(ns)));
            ns = ns * 7 / 3 + 1;
        }
        // A p99 near 5 ms no longer rounds up to the decade edge: the
        // bound is within 1/8 decade of the sample even when the max
        // sits a decade higher.
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(5_000_000);
        }
        h.record(20_000_000);
        let p99 = h.percentile_ns(99.0);
        assert_eq!(p99, 5_500_000, "p99 = {p99} still decade-rounded");
    }

    #[test]
    fn cdf_reaches_one() {
        let mut h = LatencyHistogram::new();
        for ns in [20_000u64, 20_000, 220_000] {
            h.record(ns);
        }
        let cdf = h.cdf_points();
        assert!(!cdf.is_empty());
        let last = cdf.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        a.record(1000);
        let mut b = LatencyHistogram::new();
        b.record(2000);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min_ns(), 500);
        assert_eq!(a.max_ns(), 2000);
    }

    #[test]
    fn waf_and_ratios() {
        let mut stats = SimStats::new();
        stats.host_writes = 100;
        stats.flash.data_programs = 100;
        stats.flash.gc_programs = 20;
        assert!((stats.waf() - 1.2).abs() < 1e-9);
        stats.lookups = 50;
        stats.mispredictions = 5;
        assert!((stats.misprediction_ratio() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn lookup_level_tracking() {
        let mut stats = SimStats::new();
        stats.record_lookup_levels(1);
        stats.record_lookup_levels(1);
        stats.record_lookup_levels(3);
        assert_eq!(stats.lookup_level_histogram, vec![2, 0, 1]);
        assert!((stats.avg_lookup_levels() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = SimStats::new();
        assert_eq!(stats.waf(), 0.0);
        assert_eq!(stats.misprediction_ratio(), 0.0);
        assert_eq!(stats.cache_hit_ratio(), 0.0);
        assert_eq!(stats.avg_lookup_levels(), 0.0);
    }
}
