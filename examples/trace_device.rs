//! Emit a Perfetto timeline of a GC-saturated device and show the
//! pacing control plane at work.
//!
//! ```text
//! cargo run --release --example trace_device [out.json]
//! ```
//!
//! The run colocates an SLO reader with two GC bullies on a small,
//! heavily pre-aged device, with background GC paced to one in-flight
//! migration by the QoS controller. Open the written file at
//! <https://ui.perfetto.dev>:
//!
//! * the **queues** process shows the `gc_migrate` spans *trickling*
//!   out one at a time between host reads — the mega-round pacing —
//!   instead of a solid block of back-to-back migrations,
//! * each **die** track alternates host reads with migration
//!   read/program bursts and the occasional long erase,
//! * the **control** track carries `gc_select`, `qos_tick`,
//!   `admission_defer`/`admission_resume` and `gc_stall` instants.

use leaftl_repro::core::LeaFtlConfig;
use leaftl_repro::sim::{
    replay_open_loop_with, validate_chrome_trace, DeviceConfig, LeaFtlScheme, QosControllerConfig,
    QosSpec, Slo, Ssd, SsdConfig, TrafficClass, Weighted,
};
use leaftl_repro::workloads::{gc_bully, multi_tenant_trace, slo_reader, warmup_ops, TenantSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_device.json".to_string());

    // A small device with little over-provisioning headroom: the
    // bullies keep it collecting at the watermark for the whole run.
    let mut config = SsdConfig::small_test();
    config.op_ratio = 0.5;
    config.gc_low_watermark = 0.30;
    config.gc_high_watermark = 0.40;
    config.gc_hard_floor = 0.10;
    let logical = config.logical_pages();
    let mut ssd = Ssd::new(
        config,
        LeaFtlScheme::new(LeaFtlConfig::default().with_compaction_interval(300)),
    );

    // Pre-age: two full overwrites leave every block part-stale.
    for ops in [warmup_ops(logical, 1.0), warmup_ops(logical, 1.0)] {
        for op in ops {
            if let leaftl_repro::sim::HostOp::Write { lpa, pages } = op {
                for i in 0..pages as u64 {
                    ssd.write(
                        leaftl_repro::flash::Lpa::new((lpa.raw() + i) % logical),
                        i + 1,
                    )?;
                }
            }
        }
    }
    ssd.flush()?;
    ssd.reset_stats();

    // One guaranteed reader between two GC bullies.
    let tenants = vec![
        TenantSpec::new(slo_reader(), 0, 120_000, 600).with_slo(Slo::guaranteed(20_000.0)),
        TenantSpec::new(gc_bully(), 1, 60_000, 900),
        TenantSpec::new(gc_bully(), 2, 60_000, 900),
    ];
    let slos: Vec<Slo> = tenants.iter().map(|t| t.slo).collect();
    let trace = multi_tenant_trace(&tenants, logical, 0x1ea_f71);

    // The PR-8 pacing knob: at most one in-flight migration, so the
    // watermark-refill backlog trickles onto the timeline instead of
    // monopolising every die in one mega-round.
    let ctrl = QosControllerConfig {
        control_interval_ns: 5_000_000,
        gc_pacing_limit: 1,
        ..QosControllerConfig::default()
    };
    let device = DeviceConfig::new(tenants.len(), 16)
        .background_gc()
        .with_arbiter(Box::new(Weighted::new(vec![1; tenants.len()], 1)))
        .with_qos(QosSpec::new(slos).with_controller(ctrl))
        .with_trace();

    let report = replay_open_loop_with(&mut ssd, trace, device)?;
    let sink = ssd.take_trace().expect("tracing was enabled");
    let json = sink.export_chrome_json();
    let check = validate_chrome_trace(&json).expect("exporter emits valid traces");
    std::fs::write(&out, &json)?;

    println!(
        "wrote {out}: {} events across {} die tracks ({} queue spans, {} control instants)",
        check.events, check.die_tracks, check.queue_events, check.control_events
    );
    println!(
        "replay: {} paced GC migrations dispatched, reader p99 {:.0} µs, elapsed {:.1} ms",
        report.gc_dispatched,
        report.per_stream[0].latency.percentile_ns(99.0) as f64 / 1000.0,
        report.elapsed_ns as f64 / 1e6
    );
    println!("\nper-die busy time by traffic class:");
    let util = &report.utilization;
    for class in TrafficClass::ALL {
        println!(
            "  {:8} {:>12} ns  ({:>5.1}%)",
            class.label(),
            util.class_busy_ns(class),
            util.class_share(class) * 100.0
        );
    }
    println!("\nopen {out} at https://ui.perfetto.dev to see the paced timeline");
    Ok(())
}
