//! Replay an evaluation workload against all three FTLs and compare
//! memory and latency — a miniature of the paper's Fig. 15/16 loop.
//!
//! ```text
//! cargo run --release --example trace_replay [workload] [ops]
//! # workload ∈ {hm, src2, prxy, prn, usr, home, mail, oltp, tpcc, ...}
//! ```

use leaftl_repro::baselines::{sftl_full_table_bytes, Dftl, Sftl};
use leaftl_repro::core::LeaFtlConfig;
use leaftl_repro::sim::{replay, DramPolicy, LeaFtlScheme, Ssd, SsdConfig};
use leaftl_repro::workloads::{full_suite, warmup_ops, ProfileParams};

fn config() -> SsdConfig {
    let mut config = SsdConfig::scaled(1 << 30);
    config.dram_bytes = 512 << 10;
    config.write_buffer_pages = 256;
    config.stripe_pages = 32;
    config.dram_policy = DramPolicy::DataFloor(0.2);
    config.compaction_interval_writes = 10_000;
    config
}

fn pick_profile(name: &str) -> ProfileParams {
    full_suite()
        .into_iter()
        .find(|p| p.name.to_lowercase().contains(&name.to_lowercase()))
        .unwrap_or_else(|| {
            eprintln!("unknown workload `{name}`; using MSR-hm");
            leaftl_repro::workloads::msr_hm()
        })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = pick_profile(args.first().map(String::as_str).unwrap_or("hm"));
    let ops: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let config = config();
    let logical = config.logical_pages();
    println!(
        "replaying {} ({} ops) on a {} MiB SSD with {} KiB DRAM\n",
        profile.name,
        ops,
        config.geometry.capacity_bytes() >> 20,
        config.dram_bytes >> 10
    );

    println!(
        "{:8} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "scheme", "mean µs", "read µs", "map bytes", "cache hit", "WAF"
    );
    macro_rules! run {
        ($name:expr, $ssd:expr, $full:expr) => {{
            let mut ssd = $ssd;
            replay(&mut ssd, warmup_ops(logical, 0.75))?;
            replay(&mut ssd, profile.generate(logical, ops / 5, 7))?;
            ssd.flush()?;
            ssd.reset_stats();
            let report = replay(&mut ssd, profile.generate(logical, ops, 42))?;
            let full: usize = $full(&ssd);
            println!(
                "{:8} {:>12.1} {:>12.1} {:>12} {:>9.1}% {:>8.3}",
                $name,
                report.mean_latency_us(),
                report.mean_read_latency_us(),
                full,
                ssd.stats().cache_hit_ratio() * 100.0,
                ssd.stats().waf()
            );
        }};
    }
    run!(
        "DFTL",
        Ssd::new(config.clone(), Dftl::new()),
        |ssd: &Ssd<Dftl>| ssd.scheme().full_table_bytes()
    );
    run!(
        "SFTL",
        Ssd::new(config.clone(), Sftl::new()),
        |ssd: &Ssd<Sftl>| sftl_full_table_bytes(ssd.scheme())
    );
    run!(
        "LeaFTL",
        Ssd::new(
            config.clone(),
            LeaFtlScheme::new(LeaFtlConfig::default().with_compaction_interval(10_000))
        ),
        |ssd: &Ssd<LeaFtlScheme>| ssd.scheme().table().memory_bytes().total()
    );
    Ok(())
}
