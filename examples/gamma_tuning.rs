//! Sweep the error bound γ and watch the paper's central trade-off
//! (Figs. 19/20/24): a larger γ condenses the mapping table further,
//! converts accurate segments into approximate ones, and pays a bounded
//! misprediction cost of one extra flash read.
//!
//! ```text
//! cargo run --release --example gamma_tuning
//! ```

use leaftl_repro::core::LeaFtlConfig;
use leaftl_repro::sim::{replay, LeaFtlScheme, Ssd, SsdConfig};
use leaftl_repro::workloads::{tpcc, warmup_ops};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = tpcc();
    println!("workload: {} (irregular OLTP-style mix)\n", profile.name);
    println!(
        "{:>5} {:>12} {:>10} {:>12} {:>14} {:>12}",
        "γ", "table bytes", "segments", "% approx", "mispredict %", "read µs"
    );
    for gamma in [0u32, 1, 2, 4, 8, 15] {
        let mut config = SsdConfig::scaled(1 << 30);
        config.dram_bytes = 1 << 20;
        config.write_buffer_pages = 128;
        config.stripe_pages = 32;
        config.gamma = gamma;
        config.compaction_interval_writes = 10_000;
        let scheme = LeaFtlScheme::new(
            LeaFtlConfig::default()
                .with_gamma(gamma)
                .with_compaction_interval(10_000),
        );
        let mut ssd = Ssd::new(config.clone(), scheme);
        let logical = config.logical_pages();
        replay(&mut ssd, warmup_ops(logical, 0.6))?;
        ssd.reset_stats();
        let report = replay(&mut ssd, profile.generate(logical, 40_000, 99))?;
        let stats = ssd.scheme().table_stats();
        let approx_pct = if stats.segments > 0 {
            stats.approximate_segments as f64 / stats.segments as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:>5} {:>12} {:>10} {:>11.1}% {:>13.2}% {:>12.1}",
            gamma,
            stats.memory.total(),
            stats.segments,
            approx_pct,
            ssd.stats().misprediction_ratio() * 100.0,
            report.mean_read_latency_us(),
        );
    }
    println!(
        "\nEvery misprediction costs exactly one extra flash read, resolved\n\
         through the OOB reverse-mapping window (§3.5 of the paper)."
    );
    Ok(())
}
