//! A small log-structured key-value store running on the simulated SSD
//! — the kind of data-intensive application the paper validates its
//! prototype with (§4.3: key-value stores and transactional databases).
//!
//! Keys map to fixed 4 KB value pages through a tiny in-memory index;
//! the FTL below translates, garbage-collects, and wear-levels. The
//! demo runs a YCSB-ish skewed PUT/GET mix and reports both application
//! throughput and the FTL's internals.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use leaftl_repro::core::LeaFtlConfig;
use leaftl_repro::flash::Lpa;
use leaftl_repro::sim::{LeaFtlScheme, SimError, Ssd, SsdConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One value = one page. The store appends values log-style and keeps
/// a key → LPA index (a real store would persist the index too).
struct KvStore {
    ssd: Ssd<LeaFtlScheme>,
    index: HashMap<u64, Lpa>,
    next_lpa: u64,
    capacity: u64,
}

impl KvStore {
    fn new() -> Self {
        let mut config = SsdConfig::scaled(1 << 30);
        config.dram_bytes = 1 << 20;
        config.write_buffer_pages = 128;
        config.stripe_pages = 32;
        let scheme = LeaFtlScheme::new(LeaFtlConfig::default());
        let ssd = Ssd::new(config, scheme);
        let capacity = ssd.config().logical_pages();
        KvStore {
            ssd,
            index: HashMap::new(),
            next_lpa: 0,
            capacity,
        }
    }

    /// Stores `value` under `key` (values are page-sized; the 64-bit
    /// tag stands in for the payload).
    fn put(&mut self, key: u64, value: u64) -> Result<(), SimError> {
        // Log-structured allocation of logical space: sequential LPAs
        // maximise learnability, exactly the pattern LeaFTL rewards.
        let lpa = Lpa::new(self.next_lpa % self.capacity);
        self.next_lpa += 1;
        self.ssd.write(lpa, value)?;
        self.index.insert(key, lpa);
        Ok(())
    }

    fn get(&mut self, key: u64) -> Result<Option<u64>, SimError> {
        match self.index.get(&key) {
            Some(&lpa) => self.ssd.read(lpa),
            None => Ok(None),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut store = KvStore::new();
    let mut rng = StdRng::seed_from_u64(2024);
    const KEYS: u64 = 50_000;
    const OPS: usize = 150_000;

    // Load phase.
    for key in 0..KEYS {
        store.put(key, key * 7 + 1)?;
    }
    let load_done_ns = store.ssd.now_ns();
    println!(
        "loaded {KEYS} keys in {:.1} ms simulated ({} segments, {} bytes of mapping)",
        load_done_ns as f64 / 1e6,
        store.ssd.scheme().table().segment_count(),
        store.ssd.mapping_bytes(),
    );

    // Mixed phase: 50% GET / 50% PUT, zipf-ish hot keys.
    let mut newest: HashMap<u64, u64> = (0..KEYS).map(|k| (k, k * 7 + 1)).collect();
    let mut hits = 0u64;
    for op in 0..OPS {
        let hot = rng.gen_bool(0.8);
        let key = if hot {
            rng.gen_range(0..KEYS / 10)
        } else {
            rng.gen_range(0..KEYS)
        };
        if rng.gen_bool(0.5) {
            let value = 1_000_000 + op as u64;
            store.put(key, value)?;
            newest.insert(key, value);
        } else {
            let got = store.get(key)?;
            assert_eq!(got, newest.get(&key).copied(), "key {key} corrupted");
            hits += 1;
        }
    }
    let stats = store.ssd.stats();
    println!("\nmixed phase: {OPS} ops, {hits} verified GETs, all values correct");
    println!(
        "  mean read latency {:.1} µs | mean write latency {:.1} µs",
        stats.read_latency.mean_ns() / 1000.0,
        stats.write_latency.mean_ns() / 1000.0
    );
    println!(
        "  gc runs {} | WAF {:.3} | cache hit ratio {:.1}%",
        stats.gc_runs,
        stats.waf(),
        stats.cache_hit_ratio() * 100.0
    );
    println!(
        "  learned mapping table: {} bytes for {} live pages (page-level would be {} bytes)",
        store.ssd.mapping_bytes(),
        store.index.len(),
        store.index.len() * 8,
    );

    // Pull the power mid-run and recover.
    store.put(1, 424242)?;
    let report = store.ssd.crash_and_recover()?;
    println!(
        "\npower cut: scanned {} blocks in {:.2} ms, {} buffered writes lost",
        report.scanned_blocks(),
        report.scan_time_ns as f64 / 1e6,
        report.lost_buffered_writes
    );
    let recovered = store.get(0)?;
    println!("key 0 after recovery -> {recovered:?}");
    Ok(())
}
