//! Quickstart: learn address mappings, look them up, and run a tiny
//! simulated SSD end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use leaftl_repro::core::{LeaFtlConfig, LeaFtlTable};
use leaftl_repro::flash::{Lpa, Ppa};
use leaftl_repro::sim::{LeaFtlScheme, Ssd, SsdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. The learned mapping table by itself.
    // ------------------------------------------------------------------
    let mut table = LeaFtlTable::new(LeaFtlConfig::default().with_gamma(4));

    // A buffer flush: LPA-sorted pages receive consecutive PPAs.
    let sequential: Vec<(Lpa, Ppa)> = (0..256)
        .map(|i| (Lpa::new(i), Ppa::new(10_000 + i)))
        .collect();
    table.learn(&sequential);

    // 256 mappings -> one 8-byte segment.
    println!(
        "sequential run: {} mappings in {} segment(s), {} bytes",
        256,
        table.segment_count(),
        table.memory_bytes().total()
    );

    // An irregular pattern (paper Fig. 1 C) learned within γ=4.
    let irregular = vec![
        (Lpa::new(580), Ppa::new(304)),
        (Lpa::new(582), Ppa::new(305)),
        (Lpa::new(583), Ppa::new(306)),
        (Lpa::new(584), Ppa::new(307)),
        (Lpa::new(587), Ppa::new(308)),
    ];
    table.learn(&irregular);
    for (lpa, true_ppa) in &irregular {
        let hit = table.lookup(*lpa).expect("mapped");
        println!(
            "{lpa} -> predicted {} (true {}, bound ±{}, {})",
            hit.ppa,
            true_ppa,
            hit.error_bound,
            if hit.approximate {
                "approximate"
            } else {
                "exact"
            },
        );
    }

    // ------------------------------------------------------------------
    // 2. The full simulated SSD with LeaFTL inside.
    // ------------------------------------------------------------------
    let scheme = LeaFtlScheme::new(LeaFtlConfig::default());
    let mut ssd = Ssd::new(SsdConfig::small_test(), scheme);

    for i in 0..512u64 {
        ssd.write(Lpa::new(i % ssd.config().logical_pages()), i * 3)?;
    }
    ssd.flush()?;
    let value = ssd.read(Lpa::new(100))?;
    println!("\nssd read LPA 100 -> {value:?}");
    println!(
        "mapping table: {} bytes | data cache room: {} bytes | mean write latency: {:.1} µs",
        ssd.mapping_bytes(),
        ssd.data_cache_capacity(),
        ssd.stats().write_latency.mean_ns() / 1000.0
    );
    Ok(())
}
